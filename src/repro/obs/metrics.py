"""A minimal, deterministic metrics registry (Prometheus data model).

Three instrument kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
— register into a :class:`MetricsRegistry` that the exposition layer
(:mod:`repro.obs.exposition`) renders as Prometheus text or JSONL snapshots.
The implementation is intentionally small and dependency-free:

* **Fixed, deterministic bucket edges.**  Histograms never adapt their edges
  at runtime, so two runs of the same workload produce structurally identical
  snapshots and shard-shipped histograms merge exactly (see :meth:`Histogram
  .merge` and the linearity property test).
* **Labels as child instruments.**  ``metric.labels(part="hh")`` returns a
  per-label-set child (Prometheus client idiom); the unlabeled methods
  operate on the implicit empty-label child so simple metrics stay one-liners.
* **Thread-safe where it matters.**  Child creation and histogram updates
  take a per-family lock; plain counter/gauge arithmetic relies on the GIL
  like the rest of this codebase's hot paths.

Instruments measure the run, never steer it: nothing in the pipeline reads a
metric back, so enabling metrics cannot perturb bit-identity (asserted by the
tracing on/off property tests, which enable both planes at once).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class MetricError(ValueError):
    """Raised on metric misuse: name/kind clashes, bad labels, edge mismatch."""


#: Default histogram edges for millisecond timings, log-ish spaced from
#: sub-millisecond stages to multi-second epochs.  Fixed forever: changing
#: them would break snapshot comparability across commits.
DEFAULT_MS_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


def _label_values(
    labelnames: Tuple[str, ...], labels: Dict[str, Any]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricError(
            f"expected labels {list(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared family machinery: name, labels, child bookkeeping."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        raise NotImplementedError

    def labels(self, **labels: Any) -> Any:
        values = _label_values(self.labelnames, labels)
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values, self._make_child())
        return child

    def _unlabeled(self) -> Any:
        if self.labelnames:
            raise MetricError(
                f"metric {self.name} has labels {list(self.labelnames)}; "
                "use .labels(...)"
            )
        return self.labels()

    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """(label values, child) pairs in insertion order."""
        with self._lock:
            return list(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up, got {amount}")
        self.value += amount


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    @property
    def value(self) -> float:
        return self._unlabeled().value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Metric):
    """A value that can go up and down (current level, last observation)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabeled().dec(amount)

    @property
    def value(self) -> float:
        return self._unlabeled().value


class _HistogramChild:
    __slots__ = ("edges", "bucket_counts", "sum", "count", "_lock")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self.edges = edges
        # One count per finite bucket plus the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # Prometheus buckets are upper-bound inclusive: bucket i counts
        # observations <= edges[i]; bisect_left lands value==edge in it.
        index = bisect_left(self.edges, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1

    def merge(self, other: "_HistogramChild") -> None:
        """Add another histogram in (linear: merge(a,b) == observe(a)+observe(b))."""
        if self.edges != other.edges:
            raise MetricError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        with self._lock:
            for index, count in enumerate(other.bucket_counts):
                self.bucket_counts[index] += count
            self.sum += other.sum
            self.count += other.count

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper edge, cumulative count) pairs, ending with (+Inf, count)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for edge, count in zip(self.edges, self.bucket_counts):
            running += count
            out.append((edge, running))
        out.append((float("inf"), self.count))
        return out


class Histogram(_Metric):
    """A distribution with fixed, deterministic bucket edges."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise MetricError(f"bucket edges must be sorted and unique, got {buckets}")
        self.buckets = edges

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)

    def merge(self, other: "_HistogramChild") -> None:
        self._unlabeled().merge(other)

    @property
    def sum(self) -> float:
        return self._unlabeled().sum

    @property
    def count(self) -> int:
        return self._unlabeled().count


class MetricsRegistry:
    """An ordered collection of metric families, one name each."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labels):
                    raise MetricError(
                        f"metric {name} already registered as {existing.kind} "
                        f"with labels {list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[_Metric]:
        with self._lock:
            return list(self._metrics.values())


class EpochMetrics:
    """The pipeline's standard per-epoch instruments over one shared registry.

    The streaming engine calls :meth:`observe` once per epoch with the flat
    record, the decode outcome flags, and the epoch's encoder layout; the
    service layers alert-transition counters on the same registry.  Metric
    names and labels are documented in README "Observability".
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.epochs = registry.counter(
            "repro_epochs_total", "Epochs processed by the streaming engine")
        self.flows = registry.counter(
            "repro_flows_total", "Flows replayed through the data plane")
        self.packets = registry.counter(
            "repro_packets_total", "Packets replayed through the data plane")
        self.lost_packets = registry.counter(
            "repro_lost_packets_total", "Ground-truth packets lost in transit")
        self.decode_success = registry.counter(
            "repro_decode_success_total",
            "Sketch decodes that recovered their flow set", labels=("part",))
        self.decode_failure = registry.counter(
            "repro_decode_failure_total",
            "Sketch decodes that failed to converge", labels=("part",))
        self.level_epochs = registry.counter(
            "repro_level_epochs_total",
            "Epochs spent at each attention level", labels=("level",))
        self.shard_merge_bytes = registry.counter(
            "repro_shard_merge_bytes_total",
            "Sketch-delta bytes merged centrally from shard workers")
        self.rolling_f1 = registry.gauge(
            "repro_rolling_f1", "Rolling loss-detection F1 over the engine window")
        self.rolling_are = registry.gauge(
            "repro_rolling_are", "Rolling average relative error over the window")
        self.encoder_bytes = registry.gauge(
            "repro_encoder_bytes",
            "Upstream flow-encoder bytes allocated per part this epoch",
            labels=("part",))
        self.encoder_budget_bytes = registry.gauge(
            "repro_encoder_budget_bytes",
            "Total upstream flow-encoder byte budget (all parts)")
        self.epoch_ms = registry.histogram(
            "repro_epoch_wall_ms", "Wall milliseconds per epoch")
        self.decode_ms = registry.histogram(
            "repro_decode_ms", "Milliseconds spent decoding sketches per epoch")

    def observe(
        self,
        record: Dict[str, Any],
        decode_success: Optional[Dict[str, bool]] = None,
        layout: Optional[Any] = None,
        num_arrays: int = 3,
        merge_bytes: int = 0,
    ) -> None:
        from ..controlplane.timing import SWITCH_BUCKET_BYTES

        self.epochs.inc()
        self.flows.inc(record["num_flows"])
        self.packets.inc(record["packets"])
        self.lost_packets.inc(record["lost_packets"])
        self.level_epochs.labels(level=record["level"]).inc()
        self.rolling_f1.set(record["rolling_f1"])
        self.rolling_are.set(record["rolling_are"])
        self.epoch_ms.observe(record["wall_ms"])
        self.decode_ms.observe(record["decode_ms"])
        if merge_bytes:
            self.shard_merge_bytes.inc(merge_bytes)
        if decode_success is not None:
            for part, success in decode_success.items():
                family = self.decode_success if success else self.decode_failure
                family.labels(part=part).inc()
        if layout is not None:
            per_bucket = num_arrays * SWITCH_BUCKET_BYTES
            for part, buckets in (
                ("hh", layout.m_hh), ("hl", layout.m_hl), ("ll", layout.m_ll)
            ):
                self.encoder_bytes.labels(part=part).set(buckets * per_bucket)
            self.encoder_budget_bytes.set(layout.m_uf * per_bucket)
