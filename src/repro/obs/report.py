"""Aggregate span JSONL into a self/cumulative stage-breakdown profile.

``repro.cli perf report`` drives this module: load the spans a traced run
wrote (:class:`~repro.obs.tracing.JsonlSpanSink`), group them by hierarchical
stage path, and render a profiler-style tree table where every stage shows

* **count** — how many spans hit the stage,
* **total** — cumulative milliseconds (the stage and everything under it),
* **self** — total minus the children's totals (time spent in the stage's
  own code),
* **mean** — total / count, and
* **%** — share of the root stages' combined total.

Shard-shipped spans aggregate into the same stage rows as local ones (their
durations are the cross-process-comparable part); the per-shard split stays
available in the raw JSONL.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

Path = Tuple[str, ...]


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Read a span JSONL file (one span dict per line)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def aggregate_spans(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Fold spans into one profile node per stage path, in tree preorder.

    Within each level siblings are ordered by descending total time, so the
    hottest path reads top-to-bottom.  A parent stage missing from the spans
    (possible for ingested shard paths) is synthesized with zero self time.
    """
    totals: Dict[Path, List[float]] = {}
    for span in spans:
        path = tuple(span["path"])
        entry = totals.setdefault(path, [0, 0.0])
        entry[0] += 1
        entry[1] += span["duration_ns"]
    # Synthesize missing intermediate parents so the tree is connected,
    # deepest first so a parent's roll-up sees its synthesized children.
    for path in list(totals):
        for depth in range(len(path) - 1, 0, -1):
            parent = path[:depth]
            if parent not in totals:
                child_sum = sum(
                    t for p, (_, t) in totals.items()
                    if len(p) == depth + 1 and p[:depth] == parent
                )
                totals[parent] = [0, child_sum]
    children_ns: Dict[Path, float] = {}
    for path, (_, total) in totals.items():
        if len(path) > 1:
            parent = path[:-1]
            children_ns[parent] = children_ns.get(parent, 0.0) + total
    root_total = sum(t for p, (_, t) in totals.items() if len(p) == 1) or 1.0

    def children_of(parent: Path) -> List[Path]:
        depth = len(parent) + 1
        kids = [
            p for p in totals
            if len(p) == depth and p[: len(parent)] == parent
        ]
        return sorted(kids, key=lambda p: (-totals[p][1], p))

    nodes: List[Dict[str, Any]] = []

    def visit(path: Path) -> None:
        count, total = totals[path]
        self_ns = max(0.0, total - children_ns.get(path, 0.0))
        nodes.append({
            "stage": "/".join(path),
            "name": path[-1],
            "depth": len(path) - 1,
            "count": int(count),
            "total_ms": total / 1e6,
            "self_ms": self_ns / 1e6,
            "mean_ms": (total / count / 1e6) if count else 0.0,
            "pct": 100.0 * total / root_total,
        })
        for child in children_of(path):
            visit(child)

    for root in children_of(()):
        visit(root)
    return nodes


def render_report(nodes: List[Dict[str, Any]]) -> str:
    """The profile tree as a fixed-width text table."""
    if not nodes:
        return "(no spans)"
    name_width = max(len("  " * n["depth"] + n["name"]) for n in nodes)
    name_width = max(name_width, len("stage"))
    header = (
        f"{'stage':<{name_width}}  {'count':>7}  {'total ms':>10}  "
        f"{'self ms':>10}  {'mean ms':>9}  {'%':>6}"
    )
    lines = [header, "-" * len(header)]
    for node in nodes:
        label = "  " * node["depth"] + node["name"]
        lines.append(
            f"{label:<{name_width}}  {node['count']:>7}  "
            f"{node['total_ms']:>10.2f}  {node['self_ms']:>10.2f}  "
            f"{node['mean_ms']:>9.3f}  {node['pct']:>6.1f}"
        )
    return "\n".join(lines)


def report_dict(nodes: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The profile as a JSON-able artifact (the CI stage-breakdown upload)."""
    return {
        "total_ms": sum(n["total_ms"] for n in nodes if n["depth"] == 0),
        "stages": nodes,
    }
