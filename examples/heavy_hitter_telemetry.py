#!/usr/bin/env python3
"""Heavy-hitter telemetry: the Tower+Fermat combination on an ISP-style trace.

The combination of TowerSketch (every packet) and FermatSketch (packets of
flows past the promotion threshold) supports the paper's six packet-
accumulation tasks from a few hundred kilobytes of memory.  This example runs
it on a synthetic CAIDA-like trace and scores every task against the ground
truth, alongside a Count-Min baseline for the per-flow-size task.

Run:  python examples/heavy_hitter_telemetry.py
"""

from __future__ import annotations

from repro.sketches.registry import build
from repro.metrics import (
    average_relative_error,
    empirical_entropy,
    f1_score,
    relative_error,
    weighted_mean_relative_error,
)
from repro.traffic import generate_caida_like_trace

MEMORY_BYTES = 200_000
NUM_FLOWS = 20_000
HEAVY_HITTER_THRESHOLD = 500
PROMOTION_THRESHOLD = 250  # the paper's T_h for the standalone combination


def main() -> None:
    trace = generate_caida_like_trace(num_flows=NUM_FLOWS, seed=11)
    truth_sizes = trace.flow_sizes()
    truth_distribution = {size: float(count) for size, count in trace.size_distribution().items()}
    truth_hh = {flow for flow, size in truth_sizes.items() if size > HEAVY_HITTER_THRESHOLD}

    # Both sketches come from the config-driven registry (repro.sketches).
    combo = build("tower_fermat", memory_bytes=MEMORY_BYTES, threshold=PROMOTION_THRESHOLD, seed=1)
    baseline = build("cm", memory_bytes=MEMORY_BYTES, seed=1)
    for flow in trace.flows:
        combo.insert(flow.flow_id, flow.size)
        baseline.insert(flow.flow_id, flow.size)

    print(f"trace: {len(trace)} flows, {trace.num_packets()} packets")
    print(f"Tower+Fermat memory: {combo.memory_bytes() / 1000:.0f} KB "
          f"(Count-Min baseline: {baseline.memory_bytes() / 1000:.0f} KB)\n")

    # 1. Heavy-hitter detection.
    reported_hh = combo.heavy_hitters(HEAVY_HITTER_THRESHOLD)
    print(f"heavy hitters      : {len(reported_hh)} reported, "
          f"F1 = {f1_score(reported_hh, truth_hh):.3f}")

    # 2. Flow-size estimation.
    combo_are = average_relative_error(
        truth_sizes, {flow: combo.query(flow) for flow in truth_sizes}
    )
    cm_are = average_relative_error(
        truth_sizes, {flow: baseline.query(flow) for flow in truth_sizes}
    )
    print(f"flow size ARE      : Tower+Fermat {combo_are:.4f}  vs  Count-Min {cm_are:.4f}")

    # 3. Cardinality estimation.
    cardinality = combo.cardinality()
    print(f"cardinality        : {cardinality:,.0f} "
          f"(truth {len(trace):,}, RE = {relative_error(len(trace), cardinality):.4f})")

    # 4. Flow-size distribution.
    estimated_distribution = combo.flow_size_distribution(iterations=6)
    wmre = weighted_mean_relative_error(truth_distribution, estimated_distribution)
    print(f"size distribution  : WMRE = {wmre:.4f}")

    # 5. Entropy estimation.
    estimated_entropy = combo.entropy(iterations=6)
    true_entropy = empirical_entropy(truth_distribution)
    print(f"entropy            : {estimated_entropy:.3f} "
          f"(truth {true_entropy:.3f}, RE = {relative_error(true_entropy, estimated_entropy):.4f})")

    # 6. Heavy-change detection against a second epoch.
    second = generate_caida_like_trace(num_flows=NUM_FLOWS, seed=12)
    combo2 = build("tower_fermat", memory_bytes=MEMORY_BYTES, threshold=PROMOTION_THRESHOLD, seed=1)
    for flow in second.flows:
        combo2.insert(flow.flow_id, flow.size)
    change_threshold = 250
    truth_changes = {
        flow
        for flow in set(truth_sizes) | set(second.flow_sizes())
        if abs(truth_sizes.get(flow, 0) - second.flow_sizes().get(flow, 0)) > change_threshold
    }
    reported_changes = {
        flow
        for flow in set(combo.flowset()) | set(combo2.flowset())
        if abs(combo.query(flow) - combo2.query(flow)) > change_threshold
    }
    print(f"heavy changes      : {len(reported_changes)} reported, "
          f"F1 = {f1_score(reported_changes, truth_changes):.3f}")


if __name__ == "__main__":
    main()
