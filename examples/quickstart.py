#!/usr/bin/env python3
"""Quickstart: FermatSketch for packet-loss detection on a single link.

This example mirrors the paper's core idea at the smallest possible scale:

1. deploy one FermatSketch upstream and one downstream of a link,
2. encode every packet's flow ID on both sides,
3. subtract the downstream sketch from the upstream sketch, and
4. decode the difference — it contains exactly the victim flows and how many
   packets each of them lost, using memory proportional to the number of
   victim flows rather than the number of flows or lost packets.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import FermatSketch
from repro.traffic import generate_caida_like_trace


def main() -> None:
    # A synthetic CAIDA-like workload: 5 000 flows, the 200 largest of which
    # lose about 2 % of their packets somewhere on the link.
    trace = generate_caida_like_trace(
        num_flows=5_000,
        victim_flows=200,
        loss_rate=0.02,
        victim_selection="largest",
        seed=7,
    )
    print(f"workload: {len(trace)} flows, {trace.num_packets()} packets, "
          f"{trace.num_victims()} victim flows, {trace.total_losses()} lost packets")

    # Size the sketch for the victims only (70 % target load factor, d = 3).
    upstream = FermatSketch.for_flow_count(trace.num_victims(), load_factor=0.7, seed=1)
    downstream = upstream.empty_like()
    print(f"FermatSketch memory: {upstream.memory_bytes() / 1000:.1f} KB per direction")

    # Encode the packets entering and exiting the link.
    rng = random.Random(7)
    for flow in trace.flows:
        upstream.insert(flow.flow_id, flow.size)
        delivered = flow.size - flow.lost_packets
        if delivered:
            downstream.insert(flow.flow_id, delivered)

    # The difference encodes exactly the lost packets, aggregated per flow.
    delta = upstream - downstream
    result = delta.decode()
    print(f"decode success: {result.success}, victim flows decoded: {len(result.flows)}")

    truth = trace.loss_map()
    exact = sum(1 for flow, lost in result.positive_flows().items() if truth.get(flow) == lost)
    print(f"victim flows with exactly correct loss counts: {exact}/{len(truth)}")

    worst = sorted(result.positive_flows().items(), key=lambda item: -item[1])[:5]
    print("five flows with the most lost packets:")
    for flow_id, lost in worst:
        print(f"  flow {flow_id:>10d}  lost {lost} packets")


if __name__ == "__main__":
    main()
