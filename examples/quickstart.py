#!/usr/bin/env python3
"""Quickstart: the scenario API — run a paper figure in four lines.

Every experiment in this repository is a registered *scenario*: a declarative
spec (workload parameters, sweep axis, seed policy) executed by a sweep
runner that can fan points out over a process pool and returns typed,
serializable results.  This example runs a scaled-down Figure 4 — packet-loss
detection overhead vs. the number of victim flows — twice, serially and with
four worker processes, and shows that the rows are identical.

Run:  python examples/quickstart.py

The same experiment from the command line:

    python -m repro.cli run fig4 --set flows=2000 --jobs 4 --json -
"""

from __future__ import annotations

from repro.scenarios import get_scenario, run_scenario


def main() -> None:
    # What is fig4?  Scenarios are self-describing.
    spec = get_scenario("fig4")
    print(f"scenario {spec.name}: {spec.title}")
    print(f"  sweep axis: {spec.axis}, defaults: {dict(spec.params)}\n")

    # Run it, scaled down, across 4 processes.  Per-point seeds are derived
    # deterministically, so jobs=4 produces the same rows as jobs=1.
    overrides = dict(flows=2000, victims=(100, 200, 400), trials=1)
    result = run_scenario("fig4", overrides=overrides, jobs=4)
    serial = run_scenario("fig4", overrides=overrides, jobs=1)

    # Everything except the decode wall times (fig4 measures them, and wall
    # clocks vary run to run) is bit-identical between jobs=4 and jobs=1.
    def deterministic(rows):
        return [
            {k: v for k, v in row.items() if not k.endswith("_ms")} for row in rows
        ]

    assert deterministic(result.rows()) == deterministic(serial.rows())

    print(f"{'victims':>8} {'fermat KB':>10} {'lossradar KB':>13} {'flowradar KB':>13}")
    for row in result.rows():
        print(
            f"{row['victims']:>8} {row['fermat_bytes'] / 1000:>10.1f} "
            f"{row['lossradar_bytes'] / 1000:>13.1f} "
            f"{row['flowradar_bytes'] / 1000:>13.1f}"
        )
    print(
        f"\n{len(result.points)} sweep points, jobs={result.jobs}, "
        f"{result.wall_seconds:.2f}s (serial: {serial.wall_seconds:.2f}s); "
        "rows identical across both runs"
    )

    # Results are typed objects that serialize to JSON/CSV for archiving.
    print("\nfirst 300 chars of result.to_json():")
    print(result.to_json()[:300], "...")

    print("\nReading the table: FermatSketch's memory follows the victim-flow")
    print("count — the paper's core claim — while FlowRadar records all flows")
    print("and LossRadar records all lost packets.")


if __name__ == "__main__":
    main()
