#!/usr/bin/env python3
"""Fault injection: using ChameleMon's victim-flow report to localise a failure.

A grey link failure (a flaky transceiver dropping 20 % of packets) is injected
on one host-facing link of the fat-tree.  ChameleMon reports the victim flows
and their loss counts; because every victim flow turns out to share the same
edge switch, the operator can localise the failure without per-packet traces —
the complementary use-case the paper's introduction motivates.

Run:  python examples/fault_localization.py
"""

from __future__ import annotations

from collections import Counter

from repro import ChameleMon, SwitchResources, generate_workload
from repro.network import LinkFailure, apply_faults

FAULTY_HOST = 3
LOSS_RATE = 0.2
NUM_FLOWS = 800


def main() -> None:
    system = ChameleMon(resources=SwitchResources.scaled(0.1), seed=5)
    topology = system.simulator.topology

    # Healthy traffic, then a flaky link towards one host.
    base = generate_workload(
        "HADOOP", num_flows=NUM_FLOWS, victim_ratio=0.0,
        num_hosts=system.num_hosts, seed=5,
    )
    faulty_edge = topology.edge_switch_of_host(FAULTY_HOST)
    fault = LinkFailure(faulty_edge, topology.host(FAULTY_HOST), loss_rate=LOSS_RATE)
    trace = apply_faults(base, topology, [fault], seed=5, router=system.simulator.router)
    print(f"injected fault: {LOSS_RATE:.0%} loss on link {faulty_edge} <-> host {FAULTY_HOST}")
    print(f"ground truth: {trace.num_victims()} victim flows, "
          f"{trace.total_losses()} lost packets\n")

    # Two epochs: the first lets the controller size the HL encoders.
    for _ in range(2):
        result = system.run_epoch(trace)
    losses = result.report.loss_report.all_losses()
    accuracy = result.loss_accuracy()
    print(f"ChameleMon reported {len(losses)} victim flows "
          f"(precision {accuracy['precision']:.2f}, recall {accuracy['recall']:.2f})\n")

    # Localise: which hosts do the victim flows touch?
    flows_by_id = {flow.flow_id: flow for flow in trace.flows}
    endpoint_counts: Counter[int] = Counter()
    for flow_id in losses:
        flow = flows_by_id.get(flow_id)
        if flow is None:
            continue
        endpoint_counts[flow.src_host] += 1
        endpoint_counts[flow.dst_host] += 1
    print("victim flows per host endpoint (top 5):")
    for host, count in endpoint_counts.most_common(5):
        marker = "  <-- faulty link" if host == FAULTY_HOST else ""
        print(f"  host {host}: {count} victim flows{marker}")

    suspected = endpoint_counts.most_common(1)[0][0]
    print(f"\nlocalised the failure to host {suspected}'s link: "
          f"{'correct' if suspected == FAULTY_HOST else 'incorrect'}")


if __name__ == "__main__":
    main()
