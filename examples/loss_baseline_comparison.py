#!/usr/bin/env python3
"""Loss-detection baselines: FermatSketch vs. FlowRadar vs. LossRadar.

Reproduces the spirit of Figures 4-6 as a runnable script: on the same
workload, find how much memory each scheme needs before its decoding always
succeeds, and time the decoding.  FermatSketch's memory tracks the number of
*victim flows*, FlowRadar's tracks the number of *flows*, and LossRadar's
tracks the number of *lost packets*.

Each labelled workload is one point of the registered ``fig4`` scenario with
different overrides — the experiment logic lives in the registry, not here.

Run:  python examples/loss_baseline_comparison.py
"""

from __future__ import annotations

from repro.scenarios import run_scenario

SCENARIOS = [
    ("few victims, low loss", dict(flows=4000, victims=(100,), loss_rate=0.01)),
    ("many victims, low loss", dict(flows=4000, victims=(1000,), loss_rate=0.01)),
    ("few victims, heavy loss", dict(flows=4000, victims=(100,), loss_rate=0.30)),
    ("many flows", dict(flows=16000, victims=(100,), loss_rate=0.01)),
]


def main() -> None:
    header = f"{'scenario':<24} {'scheme':<10} {'memory (KB)':>12} {'decode (ms)':>12} {'victims found':>14}"
    print(header)
    print("-" * len(header))
    for label, overrides in SCENARIOS:
        result = run_scenario("fig4", overrides=dict(trials=2, **overrides), seed=42)
        row = result.rows()[0]
        for scheme in ("fermat", "lossradar", "flowradar"):
            print(
                f"{label:<24} {scheme:<10} {row[f'{scheme}_bytes'] / 1000:>12.1f} "
                f"{row[f'{scheme}_ms']:>12.2f} "
                f"{row[f'{scheme}_victims']:>14d}"
            )
        print()

    print("Reading the table: FermatSketch's memory follows the victim-flow count,")
    print("LossRadar's follows the lost-packet count, and FlowRadar's follows the")
    print("total flow count — so FermatSketch wins whenever victims are a small")
    print("fraction of the traffic, which is the common case the paper targets.")


if __name__ == "__main__":
    main()
