#!/usr/bin/env python3
"""Loss-detection baselines: FermatSketch vs. FlowRadar vs. LossRadar.

Reproduces the spirit of Figures 4-6 as a runnable script: on the same
workload, find how much memory each scheme needs before its decoding always
succeeds, and time the decoding.  FermatSketch's memory tracks the number of
*victim flows*, FlowRadar's tracks the number of *flows*, and LossRadar's
tracks the number of *lost packets*.

Run:  python examples/loss_baseline_comparison.py
"""

from __future__ import annotations

from repro.experiments import compare_schemes
from repro.traffic import generate_caida_like_trace

SCENARIOS = [
    ("few victims, low loss", dict(num_flows=4000, victim_flows=100, loss_rate=0.01)),
    ("many victims, low loss", dict(num_flows=4000, victim_flows=1000, loss_rate=0.01)),
    ("few victims, heavy loss", dict(num_flows=4000, victim_flows=100, loss_rate=0.30)),
    ("many flows", dict(num_flows=16000, victim_flows=100, loss_rate=0.01)),
]


def main() -> None:
    header = f"{'scenario':<24} {'scheme':<10} {'memory (KB)':>12} {'decode (ms)':>12} {'victims found':>14}"
    print(header)
    print("-" * len(header))
    for label, params in SCENARIOS:
        trace = generate_caida_like_trace(victim_selection="largest", seed=42, **params)
        results = compare_schemes(trace, trials=2, seed=42)
        for scheme in ("fermat", "lossradar", "flowradar"):
            measurement = results[scheme]
            print(
                f"{label:<24} {scheme:<10} {measurement.memory_bytes / 1000:>12.1f} "
                f"{measurement.decode_milliseconds:>12.2f} "
                f"{len(measurement.detected_losses):>14d}"
            )
        print()

    print("Reading the table: FermatSketch's memory follows the victim-flow count,")
    print("LossRadar's follows the lost-packet count, and FlowRadar's follows the")
    print("total flow count — so FermatSketch wins whenever victims are a small")
    print("fraction of the traffic, which is the common case the paper targets.")


if __name__ == "__main__":
    main()
