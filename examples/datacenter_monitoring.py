#!/usr/bin/env python3
"""Datacenter monitoring: ChameleMon shifting attention as the network degrades.

This example runs the full system — fat-tree topology, one ChameleMon data
plane per ToR switch, and the central controller — over a window in which the
network state degrades from healthy (few victim flows) to ill (so many victim
flows that only heavy losses can be monitored exactly) and then recovers.

Watch the per-epoch output: the memory division between the HH / HL / LL
encoders, the classification thresholds, and the sample rate all change as the
controller shifts measurement attention, exactly as in Figure 9 of the paper.
The window itself is the registered ``fig9`` scenario with a custom schedule.

Run:  python examples/datacenter_monitoring.py
"""

from __future__ import annotations

from repro.scenarios import run_scenario

#: (number of flows, victim-flow ratio) per stage; each stage lasts 3 epochs.
SCHEDULE = (
    (500, 0.02),   # healthy: everything fits
    (1500, 0.10),  # more flows, more victims: HL encoders grow, T_h rises
    (3000, 0.25),  # ill: victims no longer fit, HLs selected, LLs sampled
    (1500, 0.10),  # recovering
    (500, 0.02),   # healthy again
)
EPOCHS_PER_STAGE = 3


def main() -> None:
    # A 1/20-scale testbed keeps this example fast; raise the scale to stress it.
    result = run_scenario(
        "fig9",
        overrides=dict(
            schedule=SCHEDULE,
            epochs_per_stage=EPOCHS_PER_STAGE,
            loss_rate=0.05,
            scale=0.05,
        ),
        seed=3,
    )

    header = (f"{'epoch':>5} {'flows':>6} {'victims':>8} {'state':>8} "
              f"{'HHE/HLE/LLE':>17} {'T_h':>6} {'T_l':>6} {'sample':>7} {'loss F1':>8}")
    print(header)
    print("-" * len(header))
    for row in result.rows():
        print(
            f"{row['epoch']:>5} {row['flows']:>6} {row['victim_ratio']:>7.0%} "
            f"{row['level']:>8} "
            f"{row['mem_hh']:>5.2f}/{row['mem_hl']:>4.2f}/{row['mem_ll']:>4.2f} "
            f"{row['threshold_high']:>6} {row['threshold_low']:>6} "
            f"{row['sample_rate']:>7.2f} {row['loss_f1']:>8.2f}"
        )

    extras = result.extras()
    print(f"\nepochs to shift per state change: {extras['shift_epochs']} "
          f"(paper: at most 3)")


if __name__ == "__main__":
    main()
