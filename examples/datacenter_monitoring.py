#!/usr/bin/env python3
"""Datacenter monitoring: ChameleMon shifting attention as the network degrades.

This example runs the full system — fat-tree topology, one ChameleMon data
plane per ToR switch, and the central controller — over a window in which the
network state degrades from healthy (few victim flows) to ill (so many victim
flows that only heavy losses can be monitored exactly) and then recovers.

Watch the per-epoch output: the memory division between the HH / HL / LL
encoders, the classification thresholds, and the sample rate all change as the
controller shifts measurement attention, exactly as in Figure 9 of the paper.

Run:  python examples/datacenter_monitoring.py
"""

from __future__ import annotations

from repro import ChameleMon, SwitchResources, generate_workload

#: (number of flows, victim-flow ratio) per stage; each stage lasts 3 epochs.
SCHEDULE = [
    (500, 0.02),   # healthy: everything fits
    (1500, 0.10),  # more flows, more victims: HL encoders grow, T_h rises
    (3000, 0.25),  # ill: victims no longer fit, HLs selected, LLs sampled
    (1500, 0.10),  # recovering
    (500, 0.02),   # healthy again
]
EPOCHS_PER_STAGE = 3


def main() -> None:
    # A 1/20-scale testbed keeps this example fast; raise the scale to stress it.
    system = ChameleMon(resources=SwitchResources.scaled(0.05), seed=3)
    print(f"fat-tree testbed: {system.simulator.topology.num_switches} switches, "
          f"{system.num_hosts} hosts, ChameleMon on {len(system.simulator.switches)} ToRs")
    header = (f"{'epoch':>5} {'flows':>6} {'victims':>8} {'state':>8} "
              f"{'HHE/HLE/LLE':>17} {'T_h':>6} {'T_l':>6} {'sample':>7} {'loss F1':>8}")
    print(header)
    print("-" * len(header))

    epoch = 0
    for num_flows, victim_ratio in SCHEDULE:
        for _ in range(EPOCHS_PER_STAGE):
            trace = generate_workload(
                "DCTCP",
                num_flows=num_flows,
                victim_ratio=victim_ratio,
                loss_rate=0.05,
                num_hosts=system.num_hosts,
                seed=100 + epoch,
            )
            result = system.run_epoch(trace)
            division = result.memory_division()
            accuracy = result.loss_accuracy()
            print(
                f"{epoch:>5} {num_flows:>6} {victim_ratio:>7.0%} {result.level.value:>8} "
                f"{division['hh']:>5.2f}/{division['hl']:>4.2f}/{division['ll']:>4.2f} "
                f"{result.config.threshold_high:>6} {result.config.threshold_low:>6} "
                f"{result.config.sample_rate:>7.2f} {accuracy['f1']:>8.2f}"
            )
            epoch += 1

    final = system.results[-1]
    print("\nfinal state:", final.level.value)
    print("final configuration:", final.config.describe())
    losses = final.report.loss_report.all_losses()
    print(f"victim flows reported in the last epoch: {len(losses)} "
          f"(ground truth: {final.truth.num_victims()})")


if __name__ == "__main__":
    main()
