#!/usr/bin/env python3
"""Continuous monitoring: the streaming engine as an always-on control loop.

A long-lived stream of DCTCP traffic crosses three live network-state changes
while the engine runs — a flow-count surge (phase schedule), a grey link
failure with later recovery, and a short flow burst.  The engine drives the
full ChameleMon deployment epoch after epoch in O(epoch) memory, exporting
one report per epoch to a JSONL file *as it happens* (tail it from another
terminal), and the console shows measurement attention shifting as each
change lands — the behaviour the paper's Figure 9 demonstrates in batch mode,
here produced by an engine that never materializes the run.

Run:  python examples/continuous_monitoring.py
"""

from __future__ import annotations

from repro import SwitchResources
from repro.network.topology import FatTreeTopology
from repro.stream import (
    ConsoleSink,
    FlowBurstEvent,
    JsonlSink,
    LinkFailureEvent,
    LinkRecoveryEvent,
    Phase,
    StreamingEngine,
    SyntheticSource,
)

OUTPUT = "continuous_monitoring.jsonl"


def main() -> None:
    # Three traffic phases: calm, surge, calm again.
    source = SyntheticSource(
        phases=(
            Phase(epochs=5, num_flows=400, victim_ratio=0.05),
            Phase(epochs=6, num_flows=1200, victim_ratio=0.15),
            Phase(epochs=5, num_flows=400, victim_ratio=0.05),
        ),
        seed=7,
    )

    # Live events on top of the phase schedule: a flaky transceiver appears
    # at epoch 6, a tenant flash crowd at epoch 8, and the link recovers at
    # epoch 11.  Events land exactly at their epoch boundaries.
    topology = FatTreeTopology.testbed()
    edge = topology.edge_switch_of_host(2)
    host = topology.host(2)
    events = [
        LinkFailureEvent(epoch=6, endpoint_a=edge, endpoint_b=host, loss_rate=0.3),
        FlowBurstEvent(epoch=8, extra_flows=300, duration=2),
        LinkRecoveryEvent(epoch=11, endpoint_a=edge, endpoint_b=host),
    ]

    engine = StreamingEngine(
        source,
        events=events,
        sinks=[ConsoleSink(), JsonlSink(OUTPUT)],
        resources=SwitchResources.scaled(0.05),
        seed=7,
    )

    print("continuous monitoring: 16 epochs, live failure at 6, burst at 8, "
          f"recovery at 11 (per-epoch records -> {OUTPUT})\n")
    summary = engine.run()

    print(
        f"\nstream summary: {summary.epochs} epochs, {summary.packets:,} packets "
        f"in {summary.wall_seconds:.1f}s ({summary.epochs_per_second:.2f} epochs/s)"
    )
    print(
        f"bounded memory: peak resident {summary.peak_resident_flows} flows "
        f"(vs {summary.flows} total over the run); mean loss F1 {summary.mean_f1:.2f}"
    )


if __name__ == "__main__":
    main()
