"""Tests for the evaluation metrics."""

import math

import pytest

from repro.metrics.accuracy import (
    average_relative_error,
    empirical_entropy,
    entropy_of_flow_sizes,
    f1_score,
    loss_detection_accuracy,
    precision_recall,
    relative_error,
    weighted_mean_relative_error,
)


class TestARE:
    def test_perfect_estimates(self):
        truth = {1: 10, 2: 20}
        assert average_relative_error(truth, truth) == 0.0

    def test_known_value(self):
        truth = {1: 10, 2: 20}
        estimates = {1: 12, 2: 25}
        assert average_relative_error(truth, estimates) == pytest.approx((0.2 + 0.25) / 2)

    def test_missing_estimates_count_as_zero(self):
        assert average_relative_error({1: 10}, {}) == 1.0

    def test_restricted_flow_set(self):
        truth = {1: 10, 2: 20}
        estimates = {1: 10, 2: 40}
        assert average_relative_error(truth, estimates, flows=[1]) == 0.0

    def test_empty(self):
        assert average_relative_error({}, {}) == 0.0


class TestRE:
    def test_relative_error(self):
        assert relative_error(100, 110) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(0, 5) == float("inf")


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert f1_score([1, 2], [1, 2]) == 1.0

    def test_precision_recall(self):
        precision, recall = precision_recall([1, 2, 3], [2, 3, 4, 5])
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)

    def test_empty_reported(self):
        precision, recall = precision_recall([], [1])
        assert precision == 1.0
        assert recall == 0.0
        assert f1_score([], [1]) == 0.0

    def test_empty_truth(self):
        precision, recall = precision_recall([1], [])
        assert recall == 1.0


class TestWMRE:
    def test_identical_distributions(self):
        assert weighted_mean_relative_error({1: 10, 2: 5}, {1: 10, 2: 5}) == 0.0

    def test_disjoint_distributions(self):
        assert weighted_mean_relative_error({1: 10}, {2: 10}) == pytest.approx(2.0)

    def test_empty(self):
        assert weighted_mean_relative_error({}, {}) == 0.0

    def test_known_value(self):
        wmre = weighted_mean_relative_error({1: 10}, {1: 5})
        assert wmre == pytest.approx(5 / 7.5)


class TestEntropy:
    def test_uniform_sizes(self):
        # N flows of size 1: entropy = log2(N).
        assert empirical_entropy({1: 8}) == pytest.approx(3.0)

    def test_single_flow_zero_entropy(self):
        assert empirical_entropy({100: 1}) == pytest.approx(0.0)

    def test_from_flow_sizes(self):
        entropy = entropy_of_flow_sizes({1: 1, 2: 1, 3: 1, 4: 1})
        assert entropy == pytest.approx(2.0)

    def test_empty(self):
        assert empirical_entropy({}) == 0.0


class TestLossAccuracy:
    def test_perfect_detection(self):
        truth = {1: 5, 2: 3}
        summary = loss_detection_accuracy(truth, dict(truth))
        assert summary["f1"] == 1.0
        assert summary["are"] == 0.0

    def test_partial_detection(self):
        truth = {1: 5, 2: 3}
        summary = loss_detection_accuracy(truth, {1: 5})
        assert summary["recall"] == pytest.approx(0.5)
        assert summary["precision"] == 1.0
