"""Tests for the traffic substrate: flow keys, distributions, workload generation."""

import random

import pytest

from repro.traffic.distributions import (
    WORKLOAD_NAMES,
    empirical_cdf,
    get_distribution,
    zipf_sizes,
)
from repro.traffic.flow import FlowKey, FlowRecord, Trace
from repro.traffic.generator import (
    generate_caida_like_trace,
    generate_workload,
    ground_truth_heavy_changes,
    ground_truth_heavy_hitters,
    largest_flows,
    make_flow_id,
    restrict_to_flows,
    sample_binomial,
)


class TestFlowKey:
    def test_pack_unpack_roundtrip(self):
        key = FlowKey(src_ip=0x0A000001, dst_ip=0x0A000002, src_port=1234, dst_port=80, protocol=6)
        assert FlowKey.from_packed(key.packed()) == key

    def test_packed_fits_104_bits(self):
        key = FlowKey(src_ip=(1 << 32) - 1, dst_ip=(1 << 32) - 1, src_port=65535, dst_port=65535, protocol=255)
        assert key.packed() < (1 << 104)

    def test_int_conversion(self):
        key = FlowKey(1, 2, 3, 4, 5)
        assert int(key) == key.packed()

    def test_ordering_defined(self):
        assert FlowKey(1, 0) < FlowKey(2, 0)


class TestDistributions:
    def test_all_workloads_available(self):
        assert set(WORKLOAD_NAMES) == {"CACHE", "DCTCP", "HADOOP", "VL2"}

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_distribution("NOPE")

    def test_samples_positive_and_bounded(self):
        rng = random.Random(1)
        for name in WORKLOAD_NAMES:
            distribution = get_distribution(name)
            sizes = distribution.sample_many(2000, rng)
            assert min(sizes) >= 1
            assert max(sizes) <= 100_000

    def test_cache_more_skewed_than_dctcp(self):
        # CACHE is dominated by single-packet flows; DCTCP is not.
        rng = random.Random(2)
        cache = get_distribution("CACHE").sample_many(5000, rng)
        dctcp = get_distribution("DCTCP").sample_many(5000, rng)
        cache_singletons = sum(1 for size in cache if size == 1) / len(cache)
        dctcp_singletons = sum(1 for size in dctcp if size == 1) / len(dctcp)
        assert cache_singletons > dctcp_singletons + 0.2

    def test_case_insensitive_lookup(self):
        assert get_distribution("dctcp").name == "DCTCP"

    def test_mean_estimate_positive(self):
        assert get_distribution("VL2").mean_estimate(samples=2000) > 1.0

    def test_zipf_sizes_total(self):
        sizes = zipf_sizes(1000, total_packets=53_000)
        assert len(sizes) == 1000
        assert abs(sum(sizes) - 53_000) / 53_000 < 0.2

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_sizes(0)
        with pytest.raises(ValueError):
            zipf_sizes(10, alpha=0)

    def test_empirical_cdf(self):
        cdf = empirical_cdf([1, 1, 2, 4])
        assert cdf[-1] == (4, 1.0)
        assert cdf[0][0] == 1
        assert empirical_cdf([]) == []


class TestTrace:
    def test_counters(self):
        trace = Trace(
            flows=[
                FlowRecord(flow_id=1, size=10, is_victim=True, lost_packets=2),
                FlowRecord(flow_id=2, size=5),
            ]
        )
        assert len(trace) == 2
        assert trace.num_packets() == 15
        assert trace.num_victims() == 1
        assert trace.total_losses() == 2
        assert trace.loss_map() == {1: 2}
        assert trace.flow_sizes() == {1: 10, 2: 5}
        assert trace.size_distribution() == {10: 1, 5: 1}

    def test_packet_iteration(self):
        trace = Trace(flows=[FlowRecord(flow_id=1, size=3), FlowRecord(flow_id=2, size=2)])
        packets = list(trace.packets())
        assert len(packets) == 5
        assert [p.sequence for p in packets[:3]] == [0, 1, 2]

    def test_interleaved_packets_complete(self):
        trace = Trace(flows=[FlowRecord(flow_id=1, size=3), FlowRecord(flow_id=2, size=4)])
        packets = list(trace.interleaved_packets(seed=1, chunk=2))
        assert len(packets) == 7
        assert sum(1 for p in packets if p.flow_id == 1) == 3


class TestGenerators:
    def test_caida_like_scale(self):
        trace = generate_caida_like_trace(num_flows=1000, seed=1)
        assert len(trace) == 1000
        mean = trace.num_packets() / len(trace)
        assert 30 < mean < 80  # calibrated to ~53 packets/flow

    def test_caida_victims_largest(self):
        trace = generate_caida_like_trace(
            num_flows=500, victim_flows=50, loss_rate=0.05, victim_selection="largest", seed=2
        )
        assert trace.num_victims() == 50
        victims = {f.flow_id for f in trace.flows if f.is_victim}
        top50 = {f.flow_id for f in largest_flows(trace, 50)}
        assert victims == top50

    def test_victims_always_lose_at_least_one_packet(self):
        trace = generate_caida_like_trace(
            num_flows=200, victim_flows=20, loss_rate=0.001, seed=3
        )
        assert all(f.lost_packets >= 1 for f in trace.flows if f.is_victim)

    def test_workload_flow_ids_unique(self):
        trace = generate_workload("DCTCP", num_flows=2000, seed=4)
        ids = [f.flow_id for f in trace.flows]
        assert len(set(ids)) == len(ids)

    def test_workload_host_assignment(self):
        trace = generate_workload("VL2", num_flows=500, num_hosts=8, seed=5)
        assert all(0 <= f.src_host < 8 and 0 <= f.dst_host < 8 for f in trace.flows)
        assert all(f.src_host != f.dst_host for f in trace.flows)

    def test_workload_victim_ratio(self):
        trace = generate_workload("HADOOP", num_flows=1000, victim_ratio=0.1, seed=6)
        assert trace.num_victims() == 100

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            generate_workload("DCTCP", num_flows=0)
        with pytest.raises(ValueError):
            generate_workload("DCTCP", num_flows=10, victim_ratio=2.0)
        with pytest.raises(ValueError):
            generate_caida_like_trace(num_flows=10, victim_flows=20)
        with pytest.raises(ValueError):
            generate_caida_like_trace(num_flows=10, victim_flows=2, victim_selection="weird")

    def test_deterministic_for_seed(self):
        a = generate_workload("DCTCP", num_flows=100, victim_ratio=0.1, seed=7)
        b = generate_workload("DCTCP", num_flows=100, victim_ratio=0.1, seed=7)
        assert a.flow_sizes() == b.flow_sizes()
        assert a.loss_map() == b.loss_map()


class TestSampleBinomial:
    """One exact binomial draw per flow (replacing the per-packet coin flips)."""

    def test_edge_cases(self):
        rng = random.Random(0)
        assert sample_binomial(rng, 0, 0.5) == 0
        assert sample_binomial(rng, 10, 0.0) == 0
        assert sample_binomial(rng, 10, 1.0) == 10
        assert sample_binomial(rng, -3, 0.5) == 0

    def test_support_bounds(self):
        rng = random.Random(1)
        for n, p in ((1, 0.5), (7, 0.01), (40, 0.99)):
            draws = [sample_binomial(rng, n, p) for _ in range(300)]
            assert all(0 <= draw <= n for draw in draws)

    def test_moments_match_binomial(self):
        rng = random.Random(2)
        for n, p in ((50, 0.1), (1000, 0.05), (5000, 0.5)):
            draws = [sample_binomial(rng, n, p) for _ in range(2000)]
            mean = sum(draws) / len(draws)
            variance = sum((draw - mean) ** 2 for draw in draws) / len(draws)
            assert mean == pytest.approx(n * p, rel=0.05)
            assert variance == pytest.approx(n * p * (1 - p), rel=0.15)

    def test_large_population_does_not_underflow(self):
        # pmf(0) underflows to 0.0 for these (n, p); the mean-centred scan
        # origin must keep the draw in the bulk of the distribution.
        rng = random.Random(3)
        draws = [sample_binomial(rng, 200_000, 0.5) for _ in range(50)]
        assert all(99_000 < draw < 101_000 for draw in draws)

    def test_single_uniform_variate_consumed(self):
        rng = random.Random(4)
        sample_binomial(rng, 1000, 0.3)
        follower = rng.random()
        rng = random.Random(4)
        rng.random()
        assert follower == rng.random()

    def test_victim_losses_scale_with_flow_sizes(self):
        trace = generate_caida_like_trace(
            num_flows=300, victim_flows=300, loss_rate=0.2, seed=8
        )
        total = trace.num_packets()
        assert trace.total_losses() == pytest.approx(0.2 * total, rel=0.1)

    def test_make_flow_id_deterministic(self):
        assert make_flow_id(5, seed=1) == make_flow_id(5, seed=1)
        assert make_flow_id(5, seed=1) != make_flow_id(6, seed=1)

    def test_ground_truth_helpers(self):
        first = Trace(flows=[FlowRecord(1, 100), FlowRecord(2, 5)])
        second = Trace(flows=[FlowRecord(1, 10), FlowRecord(3, 50)])
        assert ground_truth_heavy_hitters(first, 50) == {1: 100}
        changes = ground_truth_heavy_changes(first, second, 40)
        assert changes == {1: 90, 3: 50}

    def test_restrict_to_flows(self):
        trace = generate_caida_like_trace(num_flows=100, seed=8)
        top = largest_flows(trace, 10)
        restricted = restrict_to_flows(trace, top)
        assert len(restricted) == 10
