"""Property-based tests (hypothesis) for the core data-structure invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane.reconfig import threshold_for_target
from repro.metrics.accuracy import f1_score, weighted_mean_relative_error
from repro.sketches.fermat import FermatSketch
from repro.sketches.flowradar import FlowRadar
from repro.sketches.hashing import fold_key, unfold_key
from repro.sketches.lossradar import LossRadar
from repro.sketches.tower import TowerSketch

flow_maps = st.dictionaries(
    keys=st.integers(min_value=1, max_value=(1 << 32) - 1),
    values=st.integers(min_value=1, max_value=1000),
    min_size=1,
    max_size=60,
)


def safe_fermat(num_flows: int, seed: int = 0) -> FermatSketch:
    """A FermatSketch sized well below the decodability threshold.

    Tiny sketches have a non-negligible pure-bucket false-positive rate (1/m
    per check), so — like the P4 implementation — the property tests carry a
    fingerprint, and keep the load comfortably below the 2-core threshold.
    """
    return FermatSketch.for_flow_count(
        max(60, num_flows), load_factor=0.4, seed=seed, fingerprint_bits=16
    )


@settings(max_examples=40, deadline=None)
@given(flows=flow_maps, seed=st.integers(min_value=0, max_value=10))
def test_fermat_decode_recovers_exact_flows(flows, seed):
    """Inserting any flow set at a safe load always decodes back exactly."""
    sketch = safe_fermat(len(flows), seed=seed)
    for flow_id, size in flows.items():
        sketch.insert(flow_id, size)
    result = sketch.decode()
    assert result.success
    assert result.flows == flows


@settings(max_examples=40, deadline=None)
@given(flows=flow_maps, removed=st.data())
def test_fermat_subtraction_is_exact_difference(flows, removed):
    """upstream - downstream encodes exactly the lost packets, never more."""
    upstream = safe_fermat(len(flows), seed=1)
    downstream = upstream.empty_like()
    losses = {}
    for flow_id, size in flows.items():
        upstream.insert(flow_id, size)
        lost = removed.draw(st.integers(min_value=0, max_value=size))
        if size - lost > 0:
            downstream.insert(flow_id, size - lost)
        if lost:
            losses[flow_id] = lost
    result = (upstream - downstream).decode()
    assert result.success
    assert result.positive_flows() == losses


@settings(max_examples=30, deadline=None)
@given(flows=flow_maps)
def test_fermat_addition_commutes(flows):
    """a + b and b + a decode to the same multiset of flows."""
    items = list(flows.items())
    a = safe_fermat(len(flows), seed=2)
    b = a.empty_like()
    for index, (flow_id, size) in enumerate(items):
        (a if index % 2 else b).insert(flow_id, size)
    ab = (a + b).decode().flows
    ba = (b + a).decode().flows
    assert ab == ba == flows


@settings(max_examples=30, deadline=None)
@given(flows=flow_maps, seed=st.integers(min_value=0, max_value=5))
def test_fermat_insert_remove_roundtrip(flows, seed):
    """Removing everything that was inserted leaves an empty sketch."""
    sketch = safe_fermat(len(flows), seed=seed)
    for flow_id, size in flows.items():
        sketch.insert(flow_id, size)
    for flow_id, size in flows.items():
        sketch.remove(flow_id, size)
    assert sketch.is_empty()


@settings(max_examples=40, deadline=None)
@given(flows=flow_maps, seed=st.integers(min_value=0, max_value=5))
def test_tower_never_underestimates(flows, seed):
    """TowerSketch estimates are >= the true size (up to saturation)."""
    tower = TowerSketch([(8, 2048), (16, 1024)], seed=seed)
    for flow_id, size in flows.items():
        tower.insert(flow_id, size)
    for flow_id, size in flows.items():
        assert tower.query(flow_id) >= min(size, 255)


@settings(max_examples=30, deadline=None)
@given(flows=flow_maps)
def test_flowradar_roundtrip(flows):
    """FlowRadar decodes every inserted flow when given enough cells."""
    radar = FlowRadar(num_cells=max(64, 6 * len(flows)), seed=3)
    for flow_id, size in flows.items():
        radar.insert(flow_id, size)
    result = radar.decode()
    assert result.success
    assert result.flows == flows


@settings(max_examples=30, deadline=None)
@given(
    packets=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=1 << 20),
            st.integers(min_value=0, max_value=100),
        ),
        min_size=1,
        max_size=80,
        unique=True,
    )
)
def test_lossradar_decodes_unique_packets(packets):
    """A LossRadar holding any set of unique packet IDs decodes completely."""
    meter = LossRadar(num_cells=max(64, 6 * len(packets)), seed=4)
    expected = {}
    for flow_id, sequence in packets:
        meter.insert_packet(flow_id, sequence)
        expected[flow_id] = expected.get(flow_id, 0) + 1
    result = meter.decode()
    assert result.success
    assert result.flows == expected


@settings(max_examples=50, deadline=None)
@given(
    parts=st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 8) - 1),
    )
)
def test_key_packing_roundtrip(parts):
    widths = (32, 32, 16, 16, 8)
    assert unfold_key(fold_key(parts, widths), widths) == parts


@settings(max_examples=50, deadline=None)
@given(
    distribution=st.dictionaries(
        keys=st.integers(min_value=1, max_value=10_000),
        values=st.floats(min_value=0.1, max_value=1000),
        min_size=1,
        max_size=40,
    ),
    target=st.floats(min_value=0.0, max_value=5000),
)
def test_threshold_for_target_respects_budget(distribution, target):
    """The chosen threshold never admits more flows than the target (unless
    the threshold already sits at the minimum)."""
    threshold = threshold_for_target(distribution, target, minimum=1)
    admitted = sum(count for size, count in distribution.items() if size >= threshold)
    total = sum(distribution.values())
    assert threshold >= 1
    if threshold > max(distribution):
        assert admitted == 0
    elif threshold > 1:
        assert admitted <= max(target, min(distribution.values()))
    else:
        assert admitted == total


@settings(max_examples=50, deadline=None)
@given(
    truth=st.sets(st.integers(min_value=0, max_value=100), max_size=30),
    reported=st.sets(st.integers(min_value=0, max_value=100), max_size=30),
)
def test_f1_score_bounds(truth, reported):
    score = f1_score(reported, truth)
    assert 0.0 <= score <= 1.0
    if reported == truth:
        assert score == 1.0


@settings(max_examples=50, deadline=None)
@given(
    distribution=st.dictionaries(
        keys=st.integers(min_value=1, max_value=100),
        values=st.floats(min_value=0.0, max_value=100),
        max_size=20,
    )
)
def test_wmre_identity_is_zero(distribution):
    assert weighted_mean_relative_error(distribution, dict(distribution)) == 0.0
