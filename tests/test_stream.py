"""Tests for the repro.stream subsystem: sources, events, sinks, engine."""

import csv
import json

import pytest

from repro.dataplane.config import SwitchResources
from repro.network.topology import FatTreeTopology
from repro.stream import (
    ConsoleSink,
    CsvSink,
    EventSchedule,
    FlowBurstEvent,
    JsonlSink,
    LimitedSource,
    LinkFailureEvent,
    LinkRecoveryEvent,
    LossRateShiftEvent,
    MemorySink,
    MergeSource,
    MultiSink,
    NetworkConditions,
    Phase,
    StreamingEngine,
    SyntheticSource,
    TraceFileSource,
    comparable,
    write_trace_file,
)

RESOURCES = SwitchResources.scaled(0.05)


def make_engine(source, events=(), sinks=(), pipelined=False, **kwargs):
    return StreamingEngine(
        source,
        events=events,
        sinks=sinks,
        resources=RESOURCES,
        seed=3,
        pipelined=pipelined,
        **kwargs,
    )


# --------------------------------------------------------------------------- #
# sources
# --------------------------------------------------------------------------- #
class TestSyntheticSource:
    def test_phase_schedule_lengths_and_flow_counts(self):
        source = SyntheticSource(
            phases=(Phase(epochs=2, num_flows=100), Phase(epochs=3, num_flows=200)),
            seed=1,
        )
        assert len(source) == 5
        traces = list(source)
        assert [len(trace) for trace in traces] == [100, 100, 200, 200, 200]

    def test_phase_at(self):
        source = SyntheticSource(
            phases=(Phase(epochs=2, num_flows=100), Phase(epochs=3, num_flows=200)),
        )
        assert source.phase_at(0).num_flows == 100
        assert source.phase_at(1).num_flows == 100
        assert source.phase_at(2).num_flows == 200
        assert source.phase_at(4).num_flows == 200
        with pytest.raises(IndexError):
            source.phase_at(5)

    def test_reiteration_is_identical(self):
        source = SyntheticSource.steady(num_flows=80, epochs=3, victim_ratio=0.1, seed=4)
        first = [[flow.flow_id for flow in trace.flows] for trace in source]
        second = [[flow.flow_id for flow in trace.flows] for trace in source]
        assert first == second

    def test_epochs_are_distinct(self):
        source = SyntheticSource.steady(num_flows=60, epochs=2, seed=5)
        traces = list(source)
        assert {f.flow_id for f in traces[0].flows} != {f.flow_id for f in traces[1].flows}

    def test_from_schedule_mirrors_fig9_stages(self):
        source = SyntheticSource.from_schedule(
            ((100, 0.05), (200, 0.2)), epochs_per_stage=2, seed=6
        )
        traces = list(source)
        assert [len(trace) for trace in traces] == [100, 100, 200, 200]
        assert traces[2].num_victims() == pytest.approx(40, abs=1)

    def test_rejects_empty_or_bad_phases(self):
        with pytest.raises(ValueError):
            SyntheticSource(phases=())
        with pytest.raises(ValueError):
            Phase(epochs=0, num_flows=10)
        with pytest.raises(ValueError):
            Phase(epochs=1, num_flows=0)


class TestTraceFileSource:
    @pytest.mark.parametrize("extension", ["jsonl", "csv"])
    def test_round_trip(self, tmp_path, extension):
        source = SyntheticSource.steady(num_flows=40, epochs=3, victim_ratio=0.2, seed=7)
        path = str(tmp_path / f"trace.{extension}")
        assert write_trace_file(path, source) == 3
        replayed = list(TraceFileSource(path))
        original = list(source)
        assert len(replayed) == 3
        for a, b in zip(original, replayed):
            assert [
                (f.flow_id, f.size, f.src_host, f.dst_host, f.is_victim, f.lost_packets)
                for f in a.flows
            ] == [
                (f.flow_id, f.size, f.src_host, f.dst_host, f.is_victim, f.lost_packets)
                for f in b.flows
            ]

    def test_chunking_without_epoch_column(self, tmp_path):
        path = str(tmp_path / "flat.jsonl")
        with open(path, "w") as handle:
            for index in range(10):
                handle.write(json.dumps({"flow_id": index + 1, "size": 5}) + "\n")
        epochs = list(TraceFileSource(path, flows_per_epoch=4))
        assert [len(trace) for trace in epochs] == [4, 4, 2]

    def test_unknown_extension_rejected(self):
        with pytest.raises(ValueError):
            TraceFileSource("trace.txt")


class TestMergeSource:
    def test_concatenates_tenants_per_epoch(self):
        a = SyntheticSource.steady(num_flows=30, epochs=2, seed=1)
        b = SyntheticSource.steady(num_flows=50, epochs=2, seed=2)
        merged = list(MergeSource([a, b]))
        assert [len(trace) for trace in merged] == [80, 80]

    def test_longest_keeps_going_as_tenants_drop_out(self):
        a = SyntheticSource.steady(num_flows=30, epochs=1, seed=1)
        b = SyntheticSource.steady(num_flows=50, epochs=3, seed=2)
        merged = list(MergeSource([a, b], stop="longest"))
        assert [len(trace) for trace in merged] == [80, 50, 50]

    def test_shortest_stops_with_first_exhausted_tenant(self):
        a = SyntheticSource.steady(num_flows=30, epochs=1, seed=1)
        b = SyntheticSource.steady(num_flows=50, epochs=3, seed=2)
        merged = list(MergeSource([a, b], stop="shortest"))
        assert [len(trace) for trace in merged] == [80]

    def test_validation(self):
        with pytest.raises(ValueError):
            MergeSource([])
        with pytest.raises(ValueError):
            MergeSource([SyntheticSource.steady(10, 1)], stop="bogus")


class TestLimitedSource:
    def test_truncates(self):
        source = LimitedSource(SyntheticSource.steady(num_flows=20, epochs=5), 2)
        assert [len(trace) for trace in source] == [20, 20]


# --------------------------------------------------------------------------- #
# events
# --------------------------------------------------------------------------- #
class TestEventSchedule:
    def test_lookup_by_epoch(self):
        events = [LossRateShiftEvent(epoch=2, loss_rate=0.5), FlowBurstEvent(epoch=2, extra_flows=10)]
        schedule = EventSchedule(events)
        assert len(schedule) == 2
        assert schedule.at(2) == tuple(events)
        assert schedule.at(0) == ()
        assert schedule.last_epoch() == 2

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            EventSchedule([LossRateShiftEvent(epoch=-1, loss_rate=0.5)])


class TestNetworkConditions:
    def topology(self):
        return FatTreeTopology.testbed()

    def test_link_failure_overlays_and_recovery_clears(self):
        topology = self.topology()
        conditions = NetworkConditions(topology, seed=1)
        edge = topology.edge_switch_of_host(0)
        host = topology.host(0)
        trace = SyntheticSource.steady(num_flows=120, epochs=1, seed=2).epochs().__next__()
        conditions.apply_events([LinkFailureEvent(epoch=0, endpoint_a=edge, endpoint_b=host, loss_rate=0.4)])
        failed = conditions.transform(trace, 0)
        crossing = [f for f in failed.flows if f.src_host == 0 or f.dst_host == 0]
        assert crossing and all(f.is_victim for f in crossing)
        assert all(not f.is_victim for f in failed.flows if not (f.src_host == 0 or f.dst_host == 0))
        # endpoint order must not matter for recovery
        conditions.apply_events([LinkRecoveryEvent(epoch=1, endpoint_a=host, endpoint_b=edge)])
        recovered = conditions.transform(trace, 1)
        assert recovered.num_victims() == 0

    def test_overlay_keeps_source_victims(self):
        topology = self.topology()
        conditions = NetworkConditions(topology, seed=1)
        trace = SyntheticSource.steady(num_flows=100, epochs=1, victim_ratio=0.3, seed=3).epochs().__next__()
        edge = topology.edge_switch_of_host(1)
        conditions.apply_events([LinkFailureEvent(epoch=0, endpoint_a=edge, endpoint_b=topology.host(1), loss_rate=1.0)])
        overlaid = conditions.transform(trace, 0)
        # source victims stay victims; flows crossing the dead link lose everything
        source_victims = {f.flow_id for f in trace.flows if f.is_victim}
        assert source_victims <= {f.flow_id for f in overlaid.flows if f.is_victim}
        for flow in overlaid.flows:
            if flow.src_host == 1 or flow.dst_host == 1:
                assert flow.lost_packets == flow.size

    def test_loss_rate_shift_redraws_victims(self):
        conditions = NetworkConditions(self.topology(), seed=1)
        trace = SyntheticSource.steady(num_flows=100, epochs=1, victim_ratio=0.2, loss_rate=0.01, seed=4).epochs().__next__()
        before = trace.total_losses()
        conditions.apply_events([LossRateShiftEvent(epoch=0, loss_rate=0.6)])
        shifted = conditions.transform(trace, 0)
        assert shifted.num_victims() == trace.num_victims()
        assert shifted.total_losses() > 3 * before
        conditions.apply_events([LossRateShiftEvent(epoch=1, loss_rate=None)])
        assert conditions.transform(trace, 1).total_losses() == before

    def test_flow_burst_lasts_its_duration(self):
        conditions = NetworkConditions(self.topology(), seed=1)
        trace = SyntheticSource.steady(num_flows=50, epochs=1, seed=5).epochs().__next__()
        conditions.apply_events([FlowBurstEvent(epoch=0, extra_flows=25, duration=2)])
        assert len(conditions.transform(trace, 0)) == 75
        assert len(conditions.transform(trace, 1)) == 75
        assert len(conditions.transform(trace, 2)) == 50


# --------------------------------------------------------------------------- #
# sinks
# --------------------------------------------------------------------------- #
class TestSinks:
    RECORD = {"epoch": 0, "num_flows": 10, "num_victims": 1, "level": "healthy",
              "mem_hh": 0.8, "mem_hl": 0.2, "mem_ll": 0.0, "loss_f1": 1.0,
              "rolling_f1": 1.0, "loss_are": 0.0}

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        sink = JsonlSink(path)
        sink.write(self.RECORD)
        sink.write({**self.RECORD, "epoch": 1})
        sink.close()
        lines = [json.loads(line) for line in open(path)]
        assert [line["epoch"] for line in lines] == [0, 1]

    def test_csv_sink_header_and_rows(self, tmp_path):
        path = str(tmp_path / "records.csv")
        sink = CsvSink(path)
        sink.write(self.RECORD)
        sink.write({**self.RECORD, "epoch": 1})
        sink.close()
        rows = list(csv.DictReader(open(path)))
        assert len(rows) == 2 and rows[1]["epoch"] == "1"

    def test_multi_sink_fans_out(self, tmp_path):
        memory_a, memory_b = MemorySink(), MemorySink()
        sink = MultiSink([memory_a, memory_b])
        sink.write(self.RECORD)
        sink.close()
        assert memory_a.records == memory_b.records == [self.RECORD]

    def test_console_sink_writes_one_line(self, capsys):
        ConsoleSink().write(self.RECORD)
        out = capsys.readouterr().out
        assert out.count("\n") == 1 and "healthy" in out


# --------------------------------------------------------------------------- #
# engine
# --------------------------------------------------------------------------- #
class TestStreamingEngine:
    def source(self, epochs=6, flows=120):
        return SyntheticSource(
            phases=(
                Phase(epochs=epochs // 2, num_flows=flows, victim_ratio=0.1),
                Phase(epochs=epochs - epochs // 2, num_flows=2 * flows, victim_ratio=0.2),
            ),
            seed=3,
        )

    def events(self):
        topology = FatTreeTopology.testbed()
        edge = topology.edge_switch_of_host(0)
        host = topology.host(0)
        return [
            LinkFailureEvent(epoch=2, endpoint_a=edge, endpoint_b=host, loss_rate=0.3),
            FlowBurstEvent(epoch=3, extra_flows=60, duration=1),
            LinkRecoveryEvent(epoch=4, endpoint_a=edge, endpoint_b=host),
        ]

    def test_pipelined_bit_identical_to_serial(self):
        records = {}
        for pipelined in (False, True):
            sink = MemorySink()
            engine = make_engine(self.source(), events=self.events(), sinks=[sink],
                                 pipelined=pipelined)
            engine.run()
            records[pipelined] = [comparable(r) for r in sink.records]
        assert records[True] == records[False]

    def test_events_change_the_stream(self):
        with_sink, without_sink = MemorySink(), MemorySink()
        make_engine(self.source(), events=self.events(), sinks=[with_sink]).run()
        make_engine(self.source(), sinks=[without_sink]).run()
        with_victims = [r["num_victims"] for r in with_sink.records]
        without_victims = [r["num_victims"] for r in without_sink.records]
        assert with_victims[:2] == without_victims[:2]  # before the failure
        assert with_victims[2] > without_victims[2]  # failure epoch
        assert with_sink.records[3]["num_flows"] == without_sink.records[3]["num_flows"] + 60

    def test_bounded_memory_over_fifty_epochs(self):
        flows = 60
        source = SyntheticSource.steady(num_flows=flows, epochs=50, victim_ratio=0.1, seed=2)
        engine = make_engine(source, pipelined=True)
        summary = engine.run()
        assert summary.epochs == 50
        # O(epoch), not O(run): at most ~2 epochs of flows ever resident,
        # and the facade/controller histories stay capped.
        assert summary.peak_resident_flows <= 2 * flows
        assert len(engine.system.results) <= 2
        assert len(engine.system.controller.history) <= 2

    def test_summary_totals_and_rates(self):
        sink = MemorySink()
        engine = make_engine(self.source(epochs=4), sinks=[sink])
        summary = engine.run()
        assert summary.epochs == len(sink.records) == 4
        assert summary.flows == sum(r["num_flows"] for r in sink.records)
        assert summary.packets == sum(r["packets"] for r in sink.records)
        assert summary.epochs_per_second == pytest.approx(
            summary.epochs / summary.wall_seconds
        )
        assert summary.final_level == sink.records[-1]["level"]
        payload = summary.to_dict()
        assert payload["epochs"] == 4 and "epochs_per_second" in payload

    def test_max_epochs_stops_early(self):
        sink = MemorySink()
        engine = make_engine(self.source(epochs=6), sinks=[sink])
        summary = engine.run(max_epochs=2)
        assert summary.epochs == 2
        assert [r["epoch"] for r in sink.records] == [0, 1]

    def test_rolling_window_smooths_f1(self):
        sink = MemorySink()
        engine = make_engine(self.source(epochs=4), sinks=[sink], rolling_window=2)
        engine.run()
        records = sink.records
        for previous, current in zip(records, records[1:]):
            expected = (previous["loss_f1"] + current["loss_f1"]) / 2
            assert current["rolling_f1"] == pytest.approx(expected)

    def test_records_carry_attention_observables(self):
        sink = MemorySink()
        make_engine(self.source(epochs=2), sinks=[sink]).run()
        record = sink.records[0]
        for key in ("level", "mem_hh", "mem_hl", "mem_ll", "threshold_high",
                    "threshold_low", "sample_rate", "loss_precision",
                    "loss_recall", "loss_f1", "loss_are", "wall_ms"):
            assert key in record
        assert record["mem_hh"] + record["mem_hl"] + record["mem_ll"] == pytest.approx(1.0)

    def test_file_replay_matches_synthetic_run(self, tmp_path):
        source = self.source(epochs=4)
        path = str(tmp_path / "replay.jsonl")
        write_trace_file(path, source)
        direct, replayed = MemorySink(), MemorySink()
        make_engine(source, sinks=[direct]).run()
        make_engine(TraceFileSource(path), sinks=[replayed]).run()
        assert [comparable(r) for r in direct.records] == [
            comparable(r) for r in replayed.records
        ]

    def test_sinks_closed_after_run(self, tmp_path):
        path = str(tmp_path / "closed.jsonl")
        sink = JsonlSink(path)
        make_engine(self.source(epochs=2), sinks=[sink]).run()
        assert sink._handle.closed

    def test_validation(self):
        with pytest.raises(ValueError):
            make_engine(self.source(), rolling_window=0)
        with pytest.raises(ValueError):
            StreamingEngine(self.source(), pipelined="bogus")
