"""Property tests: sketch merge (``add``) is linear w.r.t. stream splitting.

The sharded data plane rests on one algebraic fact: encoding a stream split
across workers and then merging the per-worker sketches yields *bit-identical*
state to encoding the whole stream on one node.  These tests pin that fact for
every mergeable sketch in the registry:

* unconditionally linear — CM, CountSketch, Fermat (both narrow and wide
  primes), LossRadar: any split of any stream merges exactly;
* saturating but still exact — Tower: ``min(min(a,s)+min(b,s), s)`` equals
  ``min(a+b, s)`` for non-negative parts, so arbitrary splits merge exactly
  too;
* conditionally exact — FlowRadar and Tower+Fermat: exact for flow-disjoint
  partitions (the shard-owns-switches invariant guarantees exactly this), and
  the tests use flow-disjoint splits with pinned seeds.

Each sketch type has a state extractor returning plain Python data, so the
assertions compare every counter/IDsum/bit — not just query answers.
"""

import numpy as np
import pytest

from repro.core.tower_fermat import TowerFermat
from repro.sketches.cm import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.fermat import (
    MERSENNE_PRIME_61,
    MERSENNE_PRIME_127,
    FermatSketch,
)
from repro.sketches.flowradar import FlowRadar
from repro.sketches.lossradar import LossRadar
from repro.sketches.registry import build
from repro.sketches.tower import TowerSketch

SEEDS = (0, 1, 2)
MEMORY_BYTES = 32_768


# --------------------------------------------------------------------------- #
# state extractors — full internal state as plain, ``==``-comparable data
# --------------------------------------------------------------------------- #
def _state(sketch):
    if isinstance(sketch, TowerSketch):
        return [counters.tolist() for counters in sketch._counters]
    if isinstance(sketch, (CountMinSketch, CountSketch)):
        return sketch._counters.tolist()
    if isinstance(sketch, FermatSketch):
        return (
            [row.tolist() for row in sketch._counts],
            [[int(v) for v in row] for row in sketch._idsums],
        )
    if isinstance(sketch, FlowRadar):
        return (
            bytes(sketch._flow_filter._bits),
            sketch._flow_xor.tolist(),
            sketch._flow_count.tolist(),
            sketch._packet_count.tolist(),
        )
    if isinstance(sketch, LossRadar):
        return sketch._count.tolist(), [int(v) for v in sketch._xorsum]
    if isinstance(sketch, TowerFermat):
        return _state(sketch.tower), _state(sketch.fermat)
    raise TypeError(f"no state extractor for {type(sketch).__name__}")


def _stream(seed, num_flows=600, max_count=40):
    rng = np.random.default_rng(seed)
    flows = rng.integers(1, 1 << 32, size=num_flows, dtype=np.uint64)
    counts = rng.integers(1, max_count, size=num_flows, dtype=np.int64)
    return flows.tolist(), counts.tolist()


def _encode(sketch, flows, counts):
    for flow, count in zip(flows, counts):
        sketch.insert(int(flow), int(count))
    return sketch


# --------------------------------------------------------------------------- #
# unconditional linearity: any split of any stream
# --------------------------------------------------------------------------- #
UNCONDITIONAL = ("tower", "cm", "countsketch", "fermat", "lossradar")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", UNCONDITIONAL)
def test_split_stream_merges_exactly(name, seed):
    flows, counts = _stream(seed)
    cut = len(flows) // 3  # deliberately uneven halves
    combined = _encode(
        build(name, memory_bytes=MEMORY_BYTES, seed=seed), flows, counts
    )
    part_a = _encode(
        build(name, memory_bytes=MEMORY_BYTES, seed=seed), flows[:cut], counts[:cut]
    )
    part_b = _encode(
        build(name, memory_bytes=MEMORY_BYTES, seed=seed), flows[cut:], counts[cut:]
    )
    assert _state(part_a.add(part_b)) == _state(combined)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", UNCONDITIONAL)
def test_many_way_split_merges_exactly(name, seed):
    """4-way round-robin split — the sharded pool's actual partition shape."""
    flows, counts = _stream(seed)
    combined = _encode(
        build(name, memory_bytes=MEMORY_BYTES, seed=seed), flows, counts
    )
    merged = build(name, memory_bytes=MEMORY_BYTES, seed=seed)
    for shard in range(4):
        merged.add(
            _encode(
                build(name, memory_bytes=MEMORY_BYTES, seed=seed),
                flows[shard::4],
                counts[shard::4],
            )
        )
    assert _state(merged) == _state(combined)


@pytest.mark.parametrize("prime", (MERSENNE_PRIME_61, MERSENNE_PRIME_127))
@pytest.mark.parametrize("seed", SEEDS)
def test_fermat_linear_at_both_prime_widths(prime, seed):
    """Narrow primes use uint64 IDsum arrays, wide primes object-dtype Python
    ints — the merge must be exact on both storage paths."""
    flows, counts = _stream(seed, num_flows=300)
    make = lambda: FermatSketch(512, num_arrays=3, prime=prime, seed=seed)
    combined = _encode(make(), flows, counts)
    merged = make().add(_encode(make(), flows[::2], counts[::2]))
    merged.add(_encode(make(), flows[1::2], counts[1::2]))
    assert _state(merged) == _state(combined)
    # The merged sketch stays decodable: subtracting an empty sketch and
    # decoding recovers the exact flow -> count map.
    decoded = merged.subtract(make()).decode()
    expected = {}
    for flow, count in zip(flows, counts):
        expected[int(flow)] = expected.get(int(flow), 0) + int(count)
    assert decoded.success
    assert decoded.flows == expected


# --------------------------------------------------------------------------- #
# conditional linearity: flow-disjoint partitions
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_flowradar_flow_disjoint_merge(seed):
    flows, counts = _stream(seed, num_flows=400)
    make = lambda: build("flowradar", memory_bytes=MEMORY_BYTES, seed=seed)
    combined = _encode(make(), flows, counts)
    merged = _encode(make(), flows[::2], counts[::2]).add(
        _encode(make(), flows[1::2], counts[1::2])
    )
    assert _state(merged) == _state(combined)


@pytest.mark.parametrize("seed", SEEDS)
def test_tower_fermat_flow_disjoint_merge(seed):
    """Exact when cross-partition Tower collisions never flip a promotion
    decision — guaranteed here by generous memory relative to the stream."""
    flows, counts = _stream(seed, num_flows=60, max_count=600)
    make = lambda: build(
        "tower_fermat", memory_bytes=MEMORY_BYTES, seed=seed, threshold=250
    )
    combined = _encode(make(), flows, counts)
    merged = _encode(make(), flows[::2], counts[::2]).add(
        _encode(make(), flows[1::2], counts[1::2])
    )
    assert _state(merged) == _state(combined)


# --------------------------------------------------------------------------- #
# merge preconditions are enforced
# --------------------------------------------------------------------------- #
def test_incompatible_merges_rejected():
    with pytest.raises(ValueError):
        TowerSketch([(8, 64)], seed=0).add(TowerSketch([(8, 128)], seed=0))
    with pytest.raises(ValueError):
        TowerSketch([(8, 64)], seed=0).add(TowerSketch([(8, 64)], seed=1))
    with pytest.raises(ValueError):
        CountMinSketch(64, depth=3, seed=0).add(CountMinSketch(64, depth=3, seed=1))
    with pytest.raises(ValueError):
        CountSketch(64, depth=3, seed=0).add(CountSketch(32, depth=3, seed=0))
    with pytest.raises(ValueError):
        FermatSketch(64, seed=0).add(FermatSketch(64, seed=1))
    with pytest.raises(ValueError):
        LossRadar(64, seed=0).add(LossRadar(128, seed=0))
    with pytest.raises(ValueError):
        FlowRadar(300, seed=0).add(FlowRadar(600, seed=0))
    with pytest.raises(ValueError):
        TowerFermat([(8, 64)], threshold=100, seed=0).add(
            TowerFermat([(8, 64)], threshold=200, seed=0)
        )


def test_tower_saturation_still_exact():
    """Saturating counters: min(min(a,s)+min(b,s), s) == min(a+b, s)."""
    tower = lambda: TowerSketch([(4, 8)], seed=3)
    saturation = tower().levels[0].saturation
    flows = [5, 9, 5, 9, 5]
    counts = [10, 6, 9, 12, 1]
    combined = _encode(tower(), flows, counts)
    merged = _encode(tower(), flows[:2], counts[:2]).add(
        _encode(tower(), flows[2:], counts[2:])
    )
    assert _state(merged) == _state(combined)
    assert max(max(level) for level in _state(merged)) == saturation


def test_dunder_add_leaves_operands_untouched():
    flows, counts = _stream(7, num_flows=100)
    a = _encode(TowerSketch([(8, 256)], seed=7), flows[:50], counts[:50])
    b = _encode(TowerSketch([(8, 256)], seed=7), flows[50:], counts[50:])
    before_a, before_b = _state(a), _state(b)
    total = a + b
    assert _state(a) == before_a and _state(b) == before_b
    assert _state(total) == _state(
        _encode(TowerSketch([(8, 256)], seed=7), flows, counts)
    )
