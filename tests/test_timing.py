"""Tests for the control-loop timing/bandwidth model (Figures 20-22)."""

import random

import pytest

from repro.controlplane.timing import (
    CollectionModel,
    TOTAL_COLLECTION_MS,
    epoch_budget_ms,
    reconfiguration_entries,
    reconfiguration_time_cdf,
    reconfiguration_time_ms,
    response_time_ms,
)
from repro.dataplane.config import SwitchResources


class TestCollectionModel:
    def test_bytes_match_testbed_settings(self):
        model = CollectionModel(SwitchResources())
        # Classifier: 32768 x 1B + 16384 x 2B = 64 KB.
        assert model.classifier_bytes() == 65536
        # Upstream flow encoder: 4096 buckets x 3 arrays x 20 B.
        assert model.upstream_bytes() == 4096 * 3 * 20
        assert model.downstream_bytes() == 3072 * 3 * 20

    def test_bandwidth_at_50ms_epoch(self):
        model = CollectionModel(SwitchResources())
        bandwidth = model.bandwidth_mbps(epoch_length_ms=50, num_switches=4)
        # The paper reports ~317-320 Mbps at 50 ms epochs.
        assert 150 < bandwidth < 500

    def test_bandwidth_decreases_with_epoch_length(self):
        model = CollectionModel(SwitchResources())
        assert model.bandwidth_mbps(100) < model.bandwidth_mbps(50)

    def test_bandwidth_validation(self):
        model = CollectionModel(SwitchResources())
        with pytest.raises(ValueError):
            model.bandwidth_mbps(0)

    def test_collection_time_fixed(self):
        model = CollectionModel(SwitchResources())
        assert model.collection_time_ms() == pytest.approx(TOTAL_COLLECTION_MS)
        assert model.collection_time_ms() < 15


class TestResponseTime:
    def test_in_paper_band(self):
        # The paper's Figure 20 spans roughly 5-30 ms.
        assert 4 <= response_time_ms(100, 100, 100) <= 35
        assert 4 <= response_time_ms(4000, 3000, 500) <= 60

    def test_monotone_in_hh_candidates(self):
        assert response_time_ms(4000, 100) > response_time_ms(100, 100)

    def test_decreases_with_fewer_candidates(self):
        assert response_time_ms(100, 500) < response_time_ms(2000, 500)


class TestReconfiguration:
    def test_entries_depend_on_layout(self):
        resources = SwitchResources()
        healthy = resources.initial_config()
        from repro.dataplane.config import MonitoringConfig

        ill = MonitoringConfig(layout=resources.ill_layout, threshold_high=100,
                               threshold_low=10, sample_rate=0.1)
        assert reconfiguration_entries(healthy) > 0
        assert reconfiguration_entries(ill) > reconfiguration_entries(healthy) - 20

    def test_time_in_paper_band(self):
        resources = SwitchResources()
        rng = random.Random(1)
        times = [
            reconfiguration_time_ms(resources.initial_config(), rng) for _ in range(200)
        ]
        # Figure 22: 2-7 ms.
        assert min(times) >= 2.0
        assert max(times) <= 12.0

    def test_cdf_sorted(self):
        resources = SwitchResources()
        configs = [resources.initial_config()] * 20
        cdf = reconfiguration_time_cdf(configs, seed=2)
        assert cdf == sorted(cdf)
        assert len(cdf) == 20


class TestEpochBudget:
    def test_total_fits_in_50ms_epoch(self):
        resources = SwitchResources()
        budget = epoch_budget_ms(
            resources,
            num_hh_candidates=3000,
            num_heavy_losses=2000,
            num_sampled_light_losses=500,
            config=resources.initial_config(),
        )
        assert budget["total_ms"] < 50
        assert set(budget) == {"collection_ms", "response_ms", "reconfiguration_ms", "total_ms"}
