"""Tests for repro.chaos: deterministic injection, supervision, degradation.

The contracts under test: (1) every fault decision is a pure function of
(seed, spec, visit order) — two runs with the same chaos spec inject
identically; (2) a supervised shard pool recovers from crashes, hard kills,
and hangs with a *bit-identical* recomputed epoch; (3) the service's
checkpoint chain quarantines corrupt files (every corruption mode the
injector knows) and resumes bit-identically from the last good link; (4)
sink I/O errors are retried/dropped per policy without corrupting the
record stream; (5) lenient netstate parsing skips and counts bad lines.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.chaos import (
    CHECKPOINT_CORRUPTIONS,
    FAULT_KINDS,
    ChaosMonitor,
    ChaosSpecError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    SupervisionPolicy,
    chaos_key,
    chaos_mix64,
    chaos_uniform,
    corrupt_checkpoint,
)
from repro.dataplane.config import SwitchResources
from repro.dataplane.sharded import ShardPool, ShardRecoveryExhausted
from repro.network.simulator import build_testbed_simulator
from repro.obs import MetricsRegistry, prometheus_text
from repro.service import (
    CheckpointError,
    NetworkStateError,
    StateDiff,
    TelemetryService,
    read_checkpoint,
    read_state_diffs,
    write_checkpoint,
    write_state_diffs,
)
from repro.stream import (
    EpochSink,
    JsonlSink,
    MemorySink,
    ResilientSink,
    StreamingEngine,
    SyntheticSource,
    comparable,
)
from repro.traffic.generator import generate_workload

RESOURCES = SwitchResources.scaled(0.05)


def make_engine(seed, sinks=(), epochs=6, shards=None, flows=120, chaos=None,
                metrics=None):
    source = SyntheticSource.steady(
        num_flows=flows, epochs=epochs, victim_ratio=0.1, seed=seed
    )
    return StreamingEngine(
        source,
        sinks=sinks,
        resources=RESOURCES,
        seed=seed,
        pipelined=True,
        rolling_window=4,
        shards=shards,
        chaos=chaos,
        metrics=metrics,
    )


def injector(spec, seed=11):
    return FaultInjector.from_spec(spec, default_seed=seed)


# --------------------------------------------------------------------------- #
# deterministic substreams
# --------------------------------------------------------------------------- #
class TestChaosSubstreams:
    def test_uniforms_in_unit_interval(self):
        for draw in range(64):
            value = chaos_uniform(3, "site", 2, draw)
            assert 0.0 <= value < 1.0

    def test_deterministic_across_calls(self):
        first = [chaos_uniform(9, "backoff/sink", 4, d) for d in range(8)]
        second = [chaos_uniform(9, "backoff/sink", 4, d) for d in range(8)]
        assert first == second

    def test_site_epoch_and_seed_all_matter(self):
        base = chaos_key(5, "a", 0)
        assert base != chaos_key(5, "b", 0)
        assert base != chaos_key(5, "a", 1)
        assert base != chaos_key(6, "a", 0)

    def test_mix64_avalanches(self):
        outputs = {chaos_mix64(value) for value in range(128)}
        assert len(outputs) == 128
        assert all(0 <= value < 2 ** 64 for value in outputs)


# --------------------------------------------------------------------------- #
# spec parsing and validation
# --------------------------------------------------------------------------- #
class TestSpecParsing:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosSpecError, match="unknown fault kind"):
            FaultSpec(kind="disk_on_fire")

    def test_count_must_be_positive(self):
        with pytest.raises(ChaosSpecError, match="count"):
            FaultSpec(kind="shard_crash", count=0)

    def test_dict_round_trip(self):
        spec = FaultSpec.from_dict(
            {"kind": "shard_hang", "epoch": 3, "shard": 1, "seconds": 2.5}
        )
        assert spec.epoch == 3
        assert spec.params == {"shard": 1, "seconds": 2.5}
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_missing_kind_rejected(self):
        with pytest.raises(ChaosSpecError, match="no 'kind'"):
            FaultSpec.from_dict({"epoch": 2})

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(ChaosSpecError, match="unknown chaos spec keys"):
            FaultInjector.from_spec({"seeed": 1})

    def test_unknown_supervision_keys_rejected(self):
        with pytest.raises(ChaosSpecError, match="unknown supervision keys"):
            FaultInjector.from_spec({"supervision": {"task_timeut": 1.0}})

    def test_default_seed_applies_only_when_unset(self):
        assert injector({}, seed=9).seed == 9
        assert injector({"seed": 4}, seed=9).seed == 4

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(ChaosSpecError, match="not valid JSON"):
            FaultInjector.load(str(path))

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2]")
        with pytest.raises(ChaosSpecError, match="JSON object"):
            FaultInjector.load(str(path))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ChaosSpecError, match="cannot read"):
            FaultInjector.load(str(tmp_path / "absent.json"))


# --------------------------------------------------------------------------- #
# arming and consumption
# --------------------------------------------------------------------------- #
class TestArming:
    def test_epoch_pinned_spec_waits_for_its_epoch(self):
        inj = injector({"faults": [{"kind": "sink_flush_error", "epoch": 2}]})
        assert inj.take("sink_flush_error", 1) is None
        assert inj.take("sink_flush_error", None) is None
        assert inj.take("sink_flush_error", 2) is not None
        assert inj.take("sink_flush_error", 2) is None  # consumed

    def test_unpinned_spec_fires_on_first_visit(self):
        inj = injector({"faults": [{"kind": "metrics_bind_error"}]})
        assert inj.take("metrics_bind_error", 7) is not None
        assert inj.take("metrics_bind_error", 7) is None

    def test_count_fires_that_many_times(self):
        inj = injector({"faults": [{"kind": "sink_flush_error", "count": 3}]})
        assert inj.pending("sink_flush_error") == 3
        fired = [inj.take("sink_flush_error", e) for e in range(5)]
        assert [spec is not None for spec in fired] == [True] * 3 + [False] * 2

    def test_where_predicate_leaves_spec_armed(self):
        inj = injector({"faults": [
            {"kind": "sink_flush_error", "target": "alerts"},
        ]})
        taken = inj.take(
            "sink_flush_error", 0,
            where=lambda s: s.params.get("target", "records") == "records",
        )
        assert taken is None
        assert inj.pending("sink_flush_error") == 1  # not consumed
        assert inj.monitor.total_faults() == 0  # and not counted

    def test_sink_hook_respects_target(self):
        inj = injector({"faults": [
            {"kind": "sink_flush_error", "target": "alerts"},
        ]})
        inj.sink_hook("records")({"epoch": 0})  # must not fire or consume
        with pytest.raises(OSError, match="alerts"):
            inj.sink_hook("alerts")({"epoch": 0})

    def test_shard_faults_wrap_shard_index(self):
        inj = injector({"faults": [
            {"kind": "shard_crash", "epoch": 1, "shard": 5, "mode": "kill"},
            {"kind": "shard_hang", "epoch": 1, "shard": 0, "seconds": 9.0},
        ]})
        assert inj.shard_faults(0, 2) == []
        descriptors = inj.shard_faults(1, 2)
        assert {"shard": 1, "mode": "kill"} in descriptors
        assert {"shard": 0, "mode": "hang", "seconds": 9.0} in descriptors

    def test_identical_specs_inject_identically(self):
        spec = {"faults": [
            {"kind": "shard_crash", "epoch": 2, "mode": "exception"},
            {"kind": "sink_flush_error", "count": 2},
        ]}
        trace_a, trace_b = [], []
        for trace in (trace_a, trace_b):
            inj = injector(spec)
            for epoch in range(4):
                trace.append([d.get("mode") for d in inj.shard_faults(epoch, 2)])
                trace.append(inj.take("sink_flush_error", epoch) is not None)
        assert trace_a == trace_b

    def test_monitor_counts_fired_faults(self):
        inj = injector({"faults": [{"kind": "netstate_corrupt", "count": 2}]})
        hook = inj.netstate_hook()
        assert hook(1, '{"a": 1}') != '{"a": 1}'
        assert hook(2, '{"b": 2}') != '{"b": 2}'
        assert hook(3, '{"c": 3}') == '{"c": 3}'
        assert inj.monitor.faults_injected == {"netstate_corrupt": 2}

    def test_netstate_hook_explicit_lines(self):
        inj = injector({"faults": [
            {"kind": "netstate_corrupt", "lines": [2, 4]},
        ]})
        hook = inj.netstate_hook()
        untouched = '{"epoch": 0}'
        assert hook(1, untouched) == untouched
        assert hook(2, untouched) != untouched
        assert hook(3, untouched) == untouched
        assert hook(4, untouched) != untouched


# --------------------------------------------------------------------------- #
# shard supervision: recovery is bit-identical
# --------------------------------------------------------------------------- #
def sharded_records(seed, chaos=None, epochs=5, shards=2):
    sink = MemorySink()
    engine = make_engine(seed, sinks=[sink], epochs=epochs, shards=shards,
                         chaos=chaos)
    engine.run()
    return [comparable(record) for record in sink.records]


class TestShardSupervision:
    def test_exception_crash_recovers_bit_identical(self):
        reference = sharded_records(21)
        chaos = injector({
            "supervision": {"max_respawns": 2, "backoff_base": 0.001},
            "faults": [{"kind": "shard_crash", "epoch": 2, "shard": 0,
                        "mode": "exception"}],
        })
        assert sharded_records(21, chaos=chaos) == reference
        assert chaos.monitor.faults_injected == {"shard_crash": 1}
        assert chaos.monitor.recoveries == {"shard_pool": 1}

    def test_hard_kill_recovers_bit_identical(self):
        reference = sharded_records(22)
        chaos = injector({
            "supervision": {"max_respawns": 2, "backoff_base": 0.001},
            "faults": [{"kind": "shard_crash", "epoch": 1, "shard": 1,
                        "mode": "kill"}],
        })
        assert sharded_records(22, chaos=chaos) == reference
        assert chaos.monitor.recoveries == {"shard_pool": 1}

    def test_hang_trips_task_timeout_and_recovers(self):
        reference = sharded_records(23, epochs=4)
        chaos = injector({
            "supervision": {"task_timeout": 1.0, "max_respawns": 2,
                            "backoff_base": 0.001},
            "faults": [{"kind": "shard_hang", "epoch": 1, "shard": 0,
                        "seconds": 30.0}],
        })
        assert sharded_records(23, chaos=chaos, epochs=4) == reference
        assert chaos.monitor.faults_injected == {"shard_hang": 1}
        assert chaos.monitor.recoveries == {"shard_pool": 1}

    def test_exhausted_respawns_raise(self):
        simulator = build_testbed_simulator(resources=RESOURCES, seed=3)
        trace = generate_workload(
            "DCTCP", num_flows=40, victim_ratio=0.1, loss_rate=0.05,
            num_hosts=simulator.topology.num_hosts, seed=1,
        )
        pool = ShardPool.for_simulator(
            simulator, 2,
            supervision=SupervisionPolicy(max_respawns=1, backoff_base=0.0),
        )
        attempts = []

        def always_fails(*args, **kwargs):
            attempts.append(1)
            raise InjectedFault("persistent failure")

        pool._dispatch_epoch = always_fails
        pool._respawn = lambda: attempts  # keep the retry cheap
        try:
            with pytest.raises(ShardRecoveryExhausted, match="2 attempts"):
                pool.run_epoch(trace.columns(), key=7, configs={})
            assert len(attempts) == 2  # initial + max_respawns
            assert pool.closed
        finally:
            pool.close()
            simulator.close()

    def test_deterministic_bugs_are_not_retried(self):
        simulator = build_testbed_simulator(resources=RESOURCES, seed=3)
        trace = generate_workload(
            "DCTCP", num_flows=40, victim_ratio=0.1, loss_rate=0.05,
            num_hosts=simulator.topology.num_hosts, seed=1,
        )
        pool = ShardPool.for_simulator(simulator, 2)
        attempts = []

        def buggy(*args, **kwargs):
            attempts.append(1)
            raise KeyError("deterministic task bug")

        pool._dispatch_epoch = buggy
        try:
            with pytest.raises(KeyError):
                pool.run_epoch(trace.columns(), key=7, configs={})
            assert len(attempts) == 1
        finally:
            pool.close()
            simulator.close()

    def test_backoff_is_deterministic_and_capped(self):
        policy = SupervisionPolicy(backoff_base=0.05, backoff_cap=0.2)
        delays = [policy.backoff_delay(5, "shard_pool", 3, a) for a in range(6)]
        assert delays == [
            policy.backoff_delay(5, "shard_pool", 3, a) for a in range(6)
        ]
        assert all(0.0 < delay <= 0.2 for delay in delays)
        assert delays[-1] == 0.2  # the exponential hits the cap


class TestCloseSafety:
    def test_close_is_idempotent(self):
        simulator = build_testbed_simulator(resources=RESOURCES, seed=3)
        pool = ShardPool.for_simulator(simulator, 2)
        pool.close()
        pool.close()
        assert pool.closed
        simulator.close()

    def test_close_with_dead_workers_does_not_raise(self):
        simulator = build_testbed_simulator(resources=RESOURCES, seed=3)
        pool = ShardPool.for_simulator(simulator, 2)
        for process in list(pool._executor._processes.values()):
            process.terminate()
        pool._broken = True
        pool.close()  # must not raise or hang
        assert pool.closed
        assert pool._data_shm is None and pool._scratch_shm is None
        pool.close()
        simulator.close()


# --------------------------------------------------------------------------- #
# resilient sinks
# --------------------------------------------------------------------------- #
class FlakySink(EpochSink):
    """Fails the first ``failures`` writes with ``exc``, then succeeds."""

    kind = "flaky"
    path = None

    def __init__(self, failures, exc=OSError):
        self.failures = failures
        self.exc = exc
        self.records = []
        self.attempts = 0

    def write(self, record):
        self.attempts += 1
        if self.failures > 0:
            self.failures -= 1
            raise self.exc("flaky write")
        self.records.append(record)


def fast_retry(retries=3, fail_open=True):
    return RetryPolicy(retries=retries, backoff_base=0.0, fail_open=fail_open)


class TestResilientSink:
    def test_retries_oserror_then_recovers(self):
        monitor = ChaosMonitor()
        inner = FlakySink(failures=2)
        sink = ResilientSink(inner, policy=fast_retry(), monitor=monitor)
        sink.write({"epoch": 4, "f1": 1.0})
        assert [r["epoch"] for r in inner.records] == [4]
        assert inner.attempts == 3
        assert monitor.sink_retries == 2
        assert monitor.recoveries == {"sink": 1}

    def test_fail_open_drops_with_warning(self):
        monitor = ChaosMonitor()
        warnings = []
        sink = ResilientSink(
            FlakySink(failures=10), policy=fast_retry(retries=2),
            monitor=monitor, warn=warnings.append,
        )
        sink.write({"epoch": 1})
        assert monitor.sink_drops == 1
        assert len(warnings) == 1 and "dropped epoch 1" in warnings[0]

    def test_fail_closed_raises(self):
        sink = ResilientSink(
            FlakySink(failures=10),
            policy=fast_retry(retries=1, fail_open=False),
        )
        with pytest.raises(OSError, match="flaky"):
            sink.write({"epoch": 1})

    def test_non_oserror_propagates_immediately(self):
        inner = FlakySink(failures=10, exc=RuntimeError)
        sink = ResilientSink(inner, policy=fast_retry())
        with pytest.raises(RuntimeError):
            sink.write({"epoch": 1})
        assert inner.attempts == 1

    def test_wrapper_is_checkpoint_transparent(self, tmp_path):
        inner = JsonlSink(str(tmp_path / "r.jsonl"))
        sink = ResilientSink(inner)
        sink.write({"epoch": 0, "f1": 1.0})
        sink.sync()
        assert sink.kind == inner.kind
        assert sink.path == inner.path
        assert sink.sink_state() == inner.sink_state()
        assert sink.tell() == inner.tell()
        assert sink._sink is inner  # install_sinks reaches the hook through this
        sink.close()


# --------------------------------------------------------------------------- #
# degraded mode
# --------------------------------------------------------------------------- #
class TestDegradedMode:
    def _service(self, degraded_after=2):
        return TelemetryService(
            make_engine(31, sinks=[MemorySink()]), degraded_after=degraded_after
        )

    def test_annotates_only_past_the_streak_threshold(self):
        service = self._service(degraded_after=2)
        records = [
            {"epoch": 0, "decode_failures": 1},
            {"epoch": 1, "decode_failures": 2},
            {"epoch": 2, "decode_failures": 0},
            {"epoch": 3, "decode_failures": 1},
        ]
        for record in records:
            service._record_hook(record["epoch"], record, None)
        assert "degraded" not in records[0]  # streak 1 < threshold
        assert records[1]["degraded"] is True
        assert records[1]["degraded_streak"] == 2
        assert "degraded" not in records[2]  # clean epoch resets the streak
        assert "degraded" not in records[3]
        assert service.monitor.degraded_epochs == 1

    def test_healthy_records_stay_unannotated(self):
        service = self._service()
        record = {"epoch": 0, "decode_failures": 0}
        service._record_hook(0, record, None)
        assert "degraded" not in record

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            self._service(degraded_after=0)

    def test_streak_is_checkpointed(self, tmp_path):
        path = str(tmp_path / "svc.rtck")
        service = TelemetryService(
            make_engine(32, sinks=[MemorySink()], epochs=4),
            checkpoint_path=path, checkpoint_interval=2,
        )
        service.run(max_epochs=4)
        state = read_checkpoint(path)
        assert state["service"]["decode_fail_streak"] == 0


# --------------------------------------------------------------------------- #
# lenient netstate parsing
# --------------------------------------------------------------------------- #
def diff_feed(tmp_path, extra_lines=()):
    path = str(tmp_path / "diffs.jsonl")
    write_state_diffs(path, [
        StateDiff(epoch=1, device="edge0", path="interfaces/interface[name=to-host0]/enabled", value=False),
        StateDiff(epoch=2, device="edge0", path="interfaces/interface[name=to-host0]/enabled", value=True),
    ])
    if extra_lines:
        with open(path, "a") as handle:
            for line in extra_lines:
                handle.write(line + "\n")
    return path


class TestNetstateLenient:
    def test_strict_mode_fails_fast_with_line_number(self, tmp_path):
        path = diff_feed(tmp_path, ["{broken json"])
        with pytest.raises(NetworkStateError, match=":3:"):
            read_state_diffs(path)

    def test_lenient_mode_skips_and_reports(self, tmp_path):
        path = diff_feed(tmp_path, [
            "{broken json",
            '{"epoch": 3, "device": "edge0"}',  # missing required 'path'
        ])
        rejected = []
        diffs = read_state_diffs(
            path, strict=False,
            on_reject=lambda line, reason: rejected.append((line, reason)),
        )
        assert [diff.epoch for diff in diffs] == [1, 2]
        assert [line for line, _ in rejected] == [3, 4]
        assert "path" in rejected[1][1]

    def test_lenient_default_warns_on_stderr(self, tmp_path, capsys):
        path = diff_feed(tmp_path, ["{broken json"])
        diffs = read_state_diffs(path, strict=False)
        assert len(diffs) == 2
        assert ":3:" in capsys.readouterr().err

    def test_injected_corruption_is_skipped_and_counted(self, tmp_path):
        path = diff_feed(tmp_path)
        inj = injector({"faults": [{"kind": "netstate_corrupt", "lines": [1]}]})
        rejected = []
        diffs = read_state_diffs(
            path, strict=False,
            on_reject=lambda line, reason: rejected.append(line),
            fault_hook=inj.netstate_hook(),
        )
        assert [diff.epoch for diff in diffs] == [2]
        assert rejected == [1]
        assert inj.monitor.faults_injected == {"netstate_corrupt": 1}


# --------------------------------------------------------------------------- #
# checkpoint corruption: every mode quarantines, resume stays bit-identical
# --------------------------------------------------------------------------- #
def service_to(seed, jsonl_path, checkpoint, *, max_epochs, resume=False,
               epochs=6, keep=2):
    engine = make_engine(seed, sinks=[JsonlSink(jsonl_path)], epochs=epochs)
    service = TelemetryService(
        engine, checkpoint_path=checkpoint, checkpoint_interval=2,
        keep_checkpoints=keep,
    )
    service.run(max_epochs=max_epochs, resume=resume)
    return service


def jsonl_records(path):
    with open(path) as handle:
        return [comparable(json.loads(line)) for line in handle]


@pytest.fixture(scope="module")
def reference_records(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("chaos_ref")
    path = str(tmp / "ref.jsonl")
    service_to(41, path, checkpoint=None, max_epochs=6)
    return jsonl_records(path)


class TestCheckpointCorruption:
    @pytest.mark.parametrize("mode", CHECKPOINT_CORRUPTIONS)
    def test_every_corruption_mode_is_detected(self, tmp_path, mode):
        path = str(tmp_path / "svc.rtck")
        service_to(41, str(tmp_path / "out.jsonl"), path, max_epochs=4, keep=1)
        corrupt_checkpoint(path, mode=mode, key=chaos_key(41, "checkpoint", 4))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    @pytest.mark.parametrize("key", range(12))
    def test_single_bitflips_never_restore_silently(self, tmp_path, key):
        path = str(tmp_path / "svc.rtck")
        service_to(41, str(tmp_path / "out.jsonl"), path, max_epochs=4, keep=1)
        corrupt_checkpoint(path, mode="bitflip", key=key)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            read_checkpoint(path)

    @pytest.mark.parametrize("mode", CHECKPOINT_CORRUPTIONS)
    def test_resume_falls_back_to_last_good_link(
        self, tmp_path, mode, reference_records
    ):
        checkpoint = str(tmp_path / "svc.rtck")
        out = str(tmp_path / "out.jsonl")
        service_to(41, out, checkpoint, max_epochs=4)
        corrupt_checkpoint(
            checkpoint, mode=mode, key=chaos_key(41, "checkpoint", 4)
        )
        resumed = service_to(41, out, checkpoint, max_epochs=6, resume=True)
        assert os.path.exists(checkpoint + ".bad")
        assert resumed.monitor.recoveries.get("checkpoint", 0) == 1
        assert jsonl_records(out) == reference_records

    def test_all_links_corrupt_restarts_fresh_and_identical(
        self, tmp_path, reference_records
    ):
        checkpoint = str(tmp_path / "svc.rtck")
        out = str(tmp_path / "out.jsonl")
        service_to(41, out, checkpoint, max_epochs=4)
        for candidate in (checkpoint, checkpoint + ".1"):
            corrupt_checkpoint(candidate, mode="truncate")
        resumed = service_to(41, out, checkpoint, max_epochs=6, resume=True)
        assert os.path.exists(checkpoint + ".bad")
        assert os.path.exists(checkpoint + ".1.bad")
        assert resumed.monitor.recoveries.get("checkpoint", 0) == 1
        assert jsonl_records(out) == reference_records

    def test_chain_rotates_keeping_n_newest(self, tmp_path):
        checkpoint = str(tmp_path / "svc.rtck")
        service_to(41, str(tmp_path / "out.jsonl"), checkpoint,
                   max_epochs=6, keep=3)
        boundaries = [
            int(read_checkpoint(candidate)["engine"]["next_epoch"])
            for candidate in (checkpoint, checkpoint + ".1", checkpoint + ".2")
        ]
        assert boundaries == sorted(boundaries, reverse=True)

    def test_crc_survives_round_trip(self, tmp_path):
        path = str(tmp_path / "plain.rtck")
        state = {
            "meta": {"seed": 1},
            "engine": {"next_epoch": 2, "f1_window": [1.0, 0.5]},
        }
        write_checkpoint(path, state)
        assert read_checkpoint(path)["engine"]["f1_window"] == [1.0, 0.5]


# --------------------------------------------------------------------------- #
# metrics endpoint degradation + end-to-end service chaos
# --------------------------------------------------------------------------- #
class TestServiceChaos:
    def test_metrics_bind_failure_degrades_not_dies(self, capsys):
        chaos = injector({"faults": [{"kind": "metrics_bind_error"}]})
        sink = MemorySink()
        engine = make_engine(
            33, sinks=[sink], epochs=3, chaos=chaos, metrics=MetricsRegistry()
        )
        service = TelemetryService(engine, metrics_port=0)
        service.run(max_epochs=3)
        assert service.metrics_server is None
        assert chaos.monitor.recoveries == {"metrics": 1}
        assert len(sink.records) == 3
        assert "metrics endpoint unavailable" in capsys.readouterr().err

    def test_chaos_counters_surface_in_metrics_exposition(self):
        registry = MetricsRegistry()
        chaos = injector({"faults": [
            {"kind": "shard_crash", "epoch": 1, "mode": "exception"},
        ]})
        chaos.monitor.bind(registry)
        sink = MemorySink()
        engine = make_engine(34, sinks=[sink], epochs=3, shards=2, chaos=chaos,
                             metrics=registry)
        engine.run()
        text = prometheus_text(registry)
        assert 'repro_faults_injected_total{kind="shard_crash"} 1' in text
        assert 'repro_recoveries_total{site="shard_pool"} 1' in text

    def test_sink_fault_is_retried_exactly_once_through_service(self, tmp_path):
        out = str(tmp_path / "chaos.jsonl")
        ref = str(tmp_path / "ref.jsonl")
        TelemetryService(make_engine(35, sinks=[JsonlSink(ref)], epochs=4)).run()
        chaos = injector({"faults": [
            {"kind": "sink_flush_error", "epoch": 2},
        ]})
        service = TelemetryService(
            make_engine(35, sinks=[JsonlSink(out)], epochs=4, chaos=chaos),
            retry=fast_retry(),
        )
        service.run()
        assert chaos.monitor.sink_retries == 1
        assert chaos.monitor.recoveries == {"sink": 1}
        assert jsonl_records(out) == jsonl_records(ref)

    def test_serve_chaos_scenario_verdict(self):
        from repro.scenarios import get_scenario

        spec = get_scenario("serve_chaos")
        params = dict(spec.params)
        params.update(spec.smoke or {})
        extras = spec.func(params, spec.seed)["extras"]
        assert extras["verdict"] == "pass"
        assert extras["stream_identical"] is True
        assert extras["recovered"] is True
        assert extras["quarantined"]


# --------------------------------------------------------------------------- #
# serve --chaos CLI
# --------------------------------------------------------------------------- #
class TestServeChaosCli:
    def _serve(self, tmp_path, *extra):
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(__file__)), "src"
        )
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        base = [
            sys.executable, "-m", "repro.cli", "serve",
            "--seed", "9", "--phases", "150:0.1:4", "--quiet",
            "--shards", "2", "--scale", "0.05",
            "--jsonl", str(tmp_path / "cli.jsonl"),
        ]
        return subprocess.run(
            base + list(extra), env=env, capture_output=True, text=True,
            timeout=180,
        )

    def test_serve_with_chaos_recovers_and_reports(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "supervision": {"max_respawns": 2, "backoff_base": 0.001},
            "faults": [
                {"kind": "shard_crash", "epoch": 1, "shard": 0,
                 "mode": "exception"},
            ],
        }))
        (tmp_path / "ref").mkdir()
        reference = self._serve(tmp_path / "ref")
        assert reference.returncode == 0, reference.stderr
        chaotic = self._serve(tmp_path, "--chaos", str(spec))
        assert chaotic.returncode == 0, chaotic.stderr
        assert "chaos: faults {'shard_crash': 1}" in chaotic.stderr
        assert "recoveries {'shard_pool': 1}" in chaotic.stderr
        chaos_records = jsonl_records(tmp_path / "cli.jsonl")
        ref_records = jsonl_records(tmp_path / "ref" / "cli.jsonl")
        assert chaos_records == ref_records

    def test_bad_spec_is_a_usage_error(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"faults": [{"kind": "nope"}]}))
        result = self._serve(tmp_path, "--chaos", str(spec))
        assert result.returncode == 2
        assert "unknown fault kind" in result.stderr

    def test_fault_kinds_documented_in_error(self):
        for kind in ("shard_crash", "shard_hang", "checkpoint_corrupt",
                     "sink_flush_error", "netstate_corrupt",
                     "metrics_bind_error"):
            assert kind in FAULT_KINDS
