"""Acceptance tests for the sharded data plane.

The contract under test: ``run_epoch(shards=N)`` is *bit-identical* to the
serial batched path — same ``EpochTruth``, same sketch state on every switch
(classifier Tower counters, every Fermat encoder part's counts and IDsums),
same per-switch statistics, and same streaming-engine records — for
N ∈ {1, 2, 4}, across seeds, ID widths, and a live fault schedule.  Also
covered: the counter-based loss-draw sub-streams the identity rests on, the
fresh-switch guard, and clean pool shutdown on worker exceptions.
"""

import numpy as np
import pytest

from repro.dataplane.config import SwitchResources
from repro.dataplane.sharded import ShardPool, collect_dataplane_state
from repro.network.simulator import (
    MAX_LOSS_SEGMENTS,
    build_testbed_simulator,
    distribute_losses,
    distribute_losses_uniform,
    epoch_loss_key,
    loss_uniform,
    loss_uniforms,
)
from repro.network.topology import FatTreeSpec, FatTreeTopology
from repro.stream import (
    EventSchedule,
    LinkFailureEvent,
    LinkRecoveryEvent,
    LossRateShiftEvent,
    MemorySink,
    StreamingEngine,
    SyntheticSource,
    comparable,
)
from repro.traffic.generator import generate_workload

RESOURCES = SwitchResources.scaled(0.05)
SEEDS = (1, 2, 3)
SHARD_COUNTS = (1, 2, 4)


def _run(trace, *, sim_seed, shards=None, **sim_kwargs):
    simulator = build_testbed_simulator(
        resources=RESOURCES, seed=sim_seed, **sim_kwargs
    )
    try:
        truth = simulator.run_epoch(trace, shards=shards)
        state = collect_dataplane_state(simulator)
    finally:
        simulator.close()
    return truth, state


def _assert_truth_equal(a, b):
    assert a.flow_sizes == b.flow_sizes
    assert a.losses == b.losses
    assert a.per_switch_flows == b.per_switch_flows


class TestLossSubStreams:
    """The counter-based uniforms both paths draw from."""

    def test_vectorized_uniforms_match_scalar(self):
        key = epoch_loss_key(seed=42, epoch=7)
        positions = np.array([0, 1, 17, 999, 2**31, 2**63 - 1], dtype=np.uint64)
        grid = loss_uniforms(key, positions)
        assert grid.shape == (len(positions), MAX_LOSS_SEGMENTS)
        for row, position in enumerate(positions.tolist()):
            for slot in range(MAX_LOSS_SEGMENTS):
                assert grid[row, slot] == loss_uniform(key, position, slot)

    def test_uniforms_in_unit_interval(self):
        key = epoch_loss_key(seed=0, epoch=0)
        grid = loss_uniforms(key, np.arange(1000))
        assert float(grid.min()) >= 0.0
        assert float(grid.max()) < 1.0

    def test_epoch_keys_distinct(self):
        keys = {epoch_loss_key(seed, epoch) for seed in range(8) for epoch in range(8)}
        assert len(keys) == 64

    def test_distribute_losses_uniform_conserves_totals(self):
        from repro.dataplane.hierarchy import FlowHierarchy

        key = epoch_loss_key(seed=3, epoch=1)
        segments = [
            (FlowHierarchy.NON_SAMPLED_LL, 40),
            (FlowHierarchy.HL_CANDIDATE, 25),
            (FlowHierarchy.HH_CANDIDATE, 60),
        ]
        for position in range(50):
            uniforms = [loss_uniform(key, position, s) for s in range(MAX_LOSS_SEGMENTS)]
            for lost in (0, 1, 60, 125, 999):
                delivered = distribute_losses_uniform(segments, lost, uniforms)
                assert [h for h, _ in delivered] == [h for h, _ in segments]
                assert all(count >= 0 for _, count in delivered)
                total = sum(count for _, count in segments)
                assert sum(count for _, count in delivered) == total - min(lost, total)

    def test_stateful_variant_unchanged(self):
        import random

        from repro.dataplane.hierarchy import FlowHierarchy

        segments = [(FlowHierarchy.NON_SAMPLED_LL, 10), (FlowHierarchy.HH_CANDIDATE, 5)]
        delivered = distribute_losses(segments, 5, random.Random(0))
        assert sum(count for _, count in delivered) == 10


class TestSerialShardedIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_epoch_truth_and_sketch_state(self, seed, shards):
        trace = generate_workload(
            "DCTCP", num_flows=400, victim_ratio=0.1, loss_rate=0.1, seed=seed
        )
        serial_truth, serial_state = _run(trace, sim_seed=seed)
        sharded_truth, sharded_state = _run(trace, sim_seed=seed, shards=shards)
        _assert_truth_equal(serial_truth, sharded_truth)
        assert serial_state == sharded_state

    @pytest.mark.parametrize("seed", SEEDS)
    def test_wide_five_tuple_ids(self, seed):
        # 104-bit object-dtype IDs exercise the limb-split shared-memory path.
        trace = generate_workload(
            "HADOOP",
            num_flows=200,
            victim_ratio=0.2,
            seed=seed,
            use_five_tuple=True,
        )
        assert trace.columns().flow_ids.dtype == object
        serial_truth, serial_state = _run(trace, sim_seed=seed)
        sharded_truth, sharded_state = _run(trace, sim_seed=seed, shards=2)
        _assert_truth_equal(serial_truth, sharded_truth)
        assert serial_state == sharded_state

    def test_shard_count_invariance(self):
        trace = generate_workload(
            "VL2", num_flows=300, victim_ratio=0.1, loss_rate=0.08, seed=9
        )
        states = []
        for shards in SHARD_COUNTS:
            _, state = _run(trace, sim_seed=9, shards=shards)
            states.append(state)
        assert states[0] == states[1] == states[2]

    def test_larger_fabric(self):
        # A k=8 fat-tree (32 edge switches) so shards own many switches each.
        topology = FatTreeTopology(FatTreeSpec(k=8))
        trace = generate_workload(
            "DCTCP",
            num_flows=500,
            victim_ratio=0.1,
            num_hosts=topology.num_hosts,
            seed=4,
            use_five_tuple=False,
        )
        serial_truth, serial_state = _run(
            trace, sim_seed=4, topology=FatTreeTopology(FatTreeSpec(k=8))
        )
        sharded_truth, sharded_state = _run(
            trace, sim_seed=4, shards=4, topology=FatTreeTopology(FatTreeSpec(k=8))
        )
        _assert_truth_equal(serial_truth, sharded_truth)
        assert serial_state == sharded_state

    def test_multi_epoch_reuses_pool(self):
        serial = build_testbed_simulator(resources=RESOURCES, seed=11)
        sharded = build_testbed_simulator(resources=RESOURCES, seed=11)
        try:
            for epoch in range(3):
                trace = generate_workload(
                    "DCTCP", num_flows=200, victim_ratio=0.1, seed=100 + epoch
                )
                serial_truth = serial.run_epoch(trace)
                sharded_truth = sharded.run_epoch(trace, shards=2)
                _assert_truth_equal(serial_truth, sharded_truth)
                assert collect_dataplane_state(serial) == collect_dataplane_state(
                    sharded
                )
                pool = sharded.shard_pool
                assert pool is not None and not pool.closed
                serial.rotate_all()
                sharded.rotate_all()
        finally:
            serial.close()
            sharded.close()


class TestStreamRecordsIdentity:
    def _fault_schedule(self):
        return EventSchedule(
            [
                LinkFailureEvent(
                    epoch=1,
                    endpoint_a=("edge", 0),
                    endpoint_b=("host", 0),
                    loss_rate=0.4,
                ),
                LossRateShiftEvent(epoch=2, loss_rate=0.2),
                LinkRecoveryEvent(
                    epoch=3, endpoint_a=("edge", 0), endpoint_b=("host", 0)
                ),
            ]
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_schedule_records_identical(self, seed):
        """Serial vs sharded engine runs emit identical records under a live
        fault schedule (link failure, loss shift, recovery)."""
        outputs = {}
        for label, shards in (("serial", None), ("sharded", 2)):
            sink = MemorySink()
            StreamingEngine(
                SyntheticSource.steady(
                    num_flows=100, epochs=4, victim_ratio=0.1, seed=seed
                ),
                events=self._fault_schedule(),
                sinks=[sink],
                resources=RESOURCES,
                seed=seed,
                shards=shards,
            ).run()
            outputs[label] = [comparable(record) for record in sink.records]
        assert outputs["serial"] == outputs["sharded"]


class TestPoolLifecycle:
    def test_dirty_switches_rejected(self):
        trace = generate_workload("DCTCP", num_flows=50, victim_ratio=0.1, seed=0)
        simulator = build_testbed_simulator(resources=RESOURCES, seed=0)
        try:
            simulator.run_epoch(trace)  # leaves traffic on the switches
            with pytest.raises(ValueError, match="freshly rotated"):
                simulator.run_epoch(trace, shards=2)
        finally:
            simulator.close()

    def test_worker_exception_closes_pool(self):
        # Detach one edge switch: the owning worker raises the same KeyError
        # the serial path would, and the simulator tears the pool down.
        trace = generate_workload("DCTCP", num_flows=100, victim_ratio=0.1, seed=2)
        simulator = build_testbed_simulator(resources=RESOURCES, seed=2)
        victim_node = simulator.edge_nodes[0]
        del simulator.switches[victim_node]
        with pytest.raises(KeyError, match="no ChameleMon data plane"):
            simulator.run_epoch(trace, shards=2)
        assert simulator.shard_pool is None

    def test_close_unlinks_buffers(self):
        trace = generate_workload("DCTCP", num_flows=80, victim_ratio=0.1, seed=5)
        simulator = build_testbed_simulator(resources=RESOURCES, seed=5)
        simulator.run_epoch(trace, shards=2)
        pool = simulator.shard_pool
        data_name = pool._data_shm.name
        simulator.close()
        assert pool.closed
        assert pool._data_shm is None and pool._scratch_shm is None
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=data_name)

    def test_shard_count_change_rebuilds_pool(self):
        trace = generate_workload("DCTCP", num_flows=60, victim_ratio=0.1, seed=6)
        simulator = build_testbed_simulator(resources=RESOURCES, seed=6)
        try:
            simulator.run_epoch(trace, shards=2)
            first = simulator.shard_pool
            simulator.rotate_all()
            simulator.run_epoch(trace, shards=4)
            second = simulator.shard_pool
            assert first is not second
            assert first.closed and not second.closed
            assert second.num_shards == 4
        finally:
            simulator.close()

    def test_invalid_shard_count_rejected(self):
        simulator = build_testbed_simulator(resources=RESOURCES, seed=0)
        with pytest.raises(ValueError, match="num_shards"):
            ShardPool.for_simulator(simulator, 0)

    def test_empty_trace_needs_no_pool(self):
        from repro.traffic.flow import Trace, TraceColumns

        simulator = build_testbed_simulator(resources=RESOURCES, seed=0)
        truth = simulator.run_epoch(Trace(columns=TraceColumns.empty()), shards=2)
        assert truth.num_flows() == 0
        assert simulator.shard_pool is None
