"""Tests for TowerSketch (the flow classifier substrate)."""

import pytest

from repro.sketches.tower import TowerSketch


class TestTowerSketch:
    def test_insert_returns_estimate(self):
        tower = TowerSketch([(8, 128), (16, 64)], seed=1)
        assert tower.insert(42) == 1
        assert tower.insert(42) == 2
        assert tower.query(42) == 2

    def test_never_underestimates_single_flow(self):
        tower = TowerSketch([(8, 256), (16, 128)], seed=2)
        for _ in range(300):
            tower.insert(7)
        assert tower.query(7) >= 300 or tower.query(7) == tower.levels[1].saturation

    def test_saturation_of_narrow_level(self):
        tower = TowerSketch([(8, 64), (16, 64)], seed=3)
        tower.insert(9, 300)
        # The 8-bit counter saturates at 255 but the 16-bit one keeps counting.
        assert tower.query(9) == 300

    def test_full_saturation(self):
        tower = TowerSketch([(4, 8), (8, 4)], seed=4)
        tower.insert(1, 10_000)
        assert tower.query(1) == 255  # widest saturation value

    def test_query_unknown_flow_small(self):
        tower = TowerSketch([(8, 4096), (16, 2048)], seed=5)
        for flow in range(100):
            tower.insert(flow, 5)
        assert tower.query(999_999) <= 10

    def test_memory_bytes(self):
        tower = TowerSketch([(8, 1000), (16, 500)])
        assert tower.memory_bytes() == 1000 + 1000

    def test_counter_array_and_widest(self):
        tower = TowerSketch([(8, 100), (16, 50)])
        tower.insert(3)
        assert len(tower.counter_array(0)) == 100
        assert len(tower.widest_array()) == 100

    def test_reset(self):
        tower = TowerSketch([(8, 32), (16, 16)])
        tower.insert(1, 10)
        tower.reset()
        assert tower.query(1) == 0
        assert sum(tower.counter_array(0)) == 0

    def test_copy_independent(self):
        tower = TowerSketch([(8, 32)])
        tower.insert(1, 2)
        clone = tower.copy()
        clone.insert(1, 5)
        assert tower.query(1) == 2
        assert clone.query(1) == 7

    def test_negative_insert_rejected(self):
        tower = TowerSketch([(8, 32)])
        with pytest.raises(ValueError):
            tower.insert(1, -1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TowerSketch([])
        with pytest.raises(ValueError):
            TowerSketch([(1, 10)])
        with pytest.raises(ValueError):
            TowerSketch([(8, 0)])

    def test_chamelemon_default_scaling(self):
        full = TowerSketch.chamelemon_default(1.0)
        small = TowerSketch.chamelemon_default(0.1)
        assert full.levels[0].num_counters == 32768
        assert full.levels[1].num_counters == 16384
        assert small.levels[0].num_counters < full.levels[0].num_counters

    def test_heavy_flows_filter(self):
        tower = TowerSketch([(8, 512), (16, 256)], seed=6)
        tower.insert(100, 50)
        tower.insert(200, 5)
        heavy = tower.heavy_flows([100, 200], threshold=20)
        assert 100 in heavy and 200 not in heavy

    def test_accuracy_under_load(self):
        # Estimates are upward-biased only (Count-Min property per level).
        tower = TowerSketch([(8, 2048), (16, 1024)], seed=7)
        truth = {flow: (flow % 9) + 1 for flow in range(500)}
        for flow, size in truth.items():
            tower.insert(flow, size)
        for flow, size in truth.items():
            assert tower.query(flow) >= min(size, 255)
