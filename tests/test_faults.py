"""Failure-injection tests: fault models and end-to-end loss attribution."""

import pytest

from repro.controlplane.analysis import packet_loss_detection
from repro.dataplane.config import SwitchResources
from repro.network.faults import LinkFailure, RandomBlackhole, SwitchDrop, apply_faults, victims_by_cause
from repro.network.routing import EcmpRouter
from repro.network.simulator import build_testbed_simulator
from repro.network.topology import FatTreeTopology
from repro.traffic.generator import generate_workload


@pytest.fixture(scope="module")
def topology():
    return FatTreeTopology.testbed()


def make_trace(topology, num_flows=300, seed=1):
    return generate_workload(
        "DCTCP", num_flows=num_flows, victim_ratio=0.0, num_hosts=topology.num_hosts, seed=seed
    )


class TestFaultModels:
    def test_link_failure_affects_only_crossing_flows(self, topology):
        trace = make_trace(topology, seed=2)
        router = EcmpRouter(topology, seed=0)
        edge = topology.edge_switch_of_host(0)
        host = topology.host(0)
        fault = LinkFailure(edge, host, loss_rate=0.5)
        faulty = apply_faults(trace, topology, [fault], seed=2, router=router)
        for original, new in zip(trace.flows, faulty.flows):
            crosses = original.src_host == 0 or original.dst_host == 0
            assert new.is_victim == crosses

    def test_hard_link_failure_loses_everything(self, topology):
        trace = make_trace(topology, seed=3)
        edge = topology.edge_switch_of_host(1)
        host = topology.host(1)
        faulty = apply_faults(trace, topology, [LinkFailure(edge, host, 1.0)], seed=3)
        for flow in faulty.flows:
            if flow.is_victim and (flow.src_host == 1 or flow.dst_host == 1):
                assert flow.lost_packets == flow.size

    def test_switch_drop_affects_transit_traffic(self, topology):
        trace = make_trace(topology, seed=4)
        router = EcmpRouter(topology, seed=0)
        core = topology.core_switches[0]
        fault = SwitchDrop(core, loss_rate=0.3)
        faulty = apply_faults(trace, topology, [fault], seed=4, router=router)
        victims = {flow.flow_id for flow in faulty.flows if flow.is_victim}
        expected = set(victims_by_cause(trace, topology, [fault], router=router)[0])
        assert victims == expected

    def test_blackhole_hits_a_fraction_of_flows(self, topology):
        trace = make_trace(topology, num_flows=1000, seed=5)
        fault = RandomBlackhole(flow_fraction=0.1, seed=7)
        faulty = apply_faults(trace, topology, [fault], seed=5)
        ratio = faulty.num_victims() / len(faulty)
        assert 0.05 < ratio < 0.2

    def test_no_faults_no_victims(self, topology):
        trace = make_trace(topology, seed=6)
        faulty = apply_faults(trace, topology, [], seed=6)
        assert faulty.num_victims() == 0

    def test_multiple_faults_compose(self, topology):
        trace = make_trace(topology, seed=7)
        edge0 = topology.edge_switch_of_host(0)
        faults = [
            LinkFailure(edge0, topology.host(0), loss_rate=0.5),
            RandomBlackhole(flow_fraction=0.05, loss_rate=1.0, seed=9),
        ]
        faulty = apply_faults(trace, topology, faults, seed=7)
        causes = victims_by_cause(trace, topology, faults)
        affected = set(causes[0]) | set(causes[1])
        assert {f.flow_id for f in faulty.flows if f.is_victim} == affected


class TestLinkFailureAffectsEcmpPaths:
    """LinkFailure.affects against the router's actual ECMP paths."""

    def test_affects_is_endpoint_order_insensitive(self, topology):
        router = EcmpRouter(topology, seed=0)
        path = router.path_for_flow(1234, 0, 5)
        for left, right in zip(path, path[1:]):
            assert LinkFailure(left, right).affects(path)
            assert LinkFailure(right, left).affects(path)

    def test_affects_rejects_non_adjacent_node_pairs(self, topology):
        router = EcmpRouter(topology, seed=0)
        path = router.path_for_flow(99, 0, 5)
        # The path's two endpoints are on it but never adjacent (host-to-host
        # always crosses at least one switch), so that "link" never matches.
        assert not LinkFailure(path[0], path[-1]).affects(path)

    def test_core_link_failure_affects_exactly_the_crossing_paths(self, topology):
        router = EcmpRouter(topology, seed=0)
        core = topology.core_switches[0]
        agg = next(iter(topology.graph[core]))
        fault = LinkFailure(core, agg)
        trace = make_trace(topology, num_flows=400, seed=10)
        crossing = set()
        for flow in trace.flows:
            path = router.path_for_flow(flow.flow_id, flow.src_host, flow.dst_host)
            edges = {frozenset(pair) for pair in zip(path, path[1:])}
            if frozenset((core, agg)) in edges:
                crossing.add(flow.flow_id)
                assert fault.affects(path)
            else:
                assert not fault.affects(path)
        # ECMP spreads inter-pod flows over both cores: some (not all) cross.
        assert 0 < len(crossing) < len(trace)
        victims = set(victims_by_cause(trace, topology, [fault], router=router)[0])
        assert victims == crossing

    def test_intra_rack_flows_never_cross_fabric_links(self, topology):
        router = EcmpRouter(topology, seed=0)
        core = topology.core_switches[0]
        agg = next(iter(topology.graph[core]))
        fault = LinkFailure(core, agg)
        rack_hosts = [
            index
            for index in range(topology.num_hosts)
            if topology.edge_switch_of_host(index) == topology.edge_switch_of_host(0)
        ]
        assert len(rack_hosts) >= 2
        path = router.path_for_flow(7, rack_hosts[0], rack_hosts[1])
        assert not fault.affects(path)


class TestFaultedEpochSurvival:
    """Fault-rewritten victim sets must survive a simulated epoch intact."""

    @pytest.mark.parametrize("loss_rate", [0.3, 1.0])
    def test_epoch_truth_matches_fault_assignment(self, topology, loss_rate):
        simulator = build_testbed_simulator(resources=SwitchResources.scaled(0.1), seed=11)
        trace = make_trace(topology, num_flows=200, seed=11)
        edge = simulator.topology.edge_switch_of_host(4)
        fault = LinkFailure(edge, simulator.topology.host(4), loss_rate=loss_rate)
        faulty = apply_faults(trace, simulator.topology, [fault], seed=11,
                              router=simulator.router)
        truth = simulator.run_epoch(faulty)
        # The simulator's ground truth reproduces the fault model's victim
        # set and per-flow loss counts exactly.
        assert truth.losses == faulty.loss_map()
        assert set(truth.losses) == {f.flow_id for f in faulty.flows if f.is_victim}

    def test_ecmp_core_fault_attribution_through_an_epoch(self, topology):
        simulator = build_testbed_simulator(resources=SwitchResources.scaled(0.1), seed=12)
        trace = make_trace(topology, num_flows=200, seed=12)
        core = simulator.topology.core_switches[1]
        agg = next(iter(simulator.topology.graph[core]))
        fault = LinkFailure(core, agg, loss_rate=0.4)
        faulty = apply_faults(trace, simulator.topology, [fault], seed=12,
                              router=simulator.router)
        expected = set(victims_by_cause(trace, simulator.topology, [fault],
                                        router=simulator.router)[0])
        assert {f.flow_id for f in faulty.flows if f.is_victim} == expected

        simulator.run_epoch(faulty)
        groups = {node: s.end_epoch() for node, s in simulator.switches.items()}
        report = packet_loss_detection(groups)
        assert report.analysis_completed
        assert set(report.all_losses()) == set(faulty.loss_map())
        # Loss counts are attributed exactly (Fermat decodes are lossless
        # when the encoders are sized for the epoch's victim count).
        assert report.all_losses() == faulty.loss_map()


class TestEndToEndAttribution:
    def test_chamelemon_reports_the_faulted_flows(self, topology):
        """Inject a grey link failure and check ChameleMon's loss report."""
        resources = SwitchResources.scaled(0.1)
        simulator = build_testbed_simulator(resources=resources, seed=8)
        trace = make_trace(topology, num_flows=250, seed=8)
        edge = simulator.topology.edge_switch_of_host(2)
        fault = LinkFailure(edge, simulator.topology.host(2), loss_rate=0.2)
        faulty = apply_faults(trace, simulator.topology, [fault], seed=8,
                              router=simulator.router)

        simulator.run_epoch(faulty)
        groups = {node: s.end_epoch() for node, s in simulator.switches.items()}
        report = packet_loss_detection(groups)
        assert report.analysis_completed
        reported = set(report.all_losses())
        truth = set(faulty.loss_map())
        assert reported == truth
