"""Tests for the heavy-hitter oriented baselines: Elastic, FCM, HashPipe, UnivMon, Coco."""

import random

import pytest

from repro.sketches.coco import CocoSketch
from repro.sketches.elastic import ElasticSketch
from repro.sketches.fcm import FCMSketch
from repro.sketches.hashpipe import HashPipe
from repro.sketches.univmon import UnivMon


def zipf_flows(count, seed=0, scale=2000):
    rng = random.Random(seed)
    return {
        flow: max(1, int(scale / (rank + 1)))
        for rank, flow in enumerate(rng.sample(range(1, 1 << 30), count))
    }


def recall_of_top(sketch, truth, top=10, threshold=50):
    top_truth = sorted(truth, key=truth.get, reverse=True)[:top]
    reported = sketch.heavy_hitters(threshold)
    return sum(1 for flow in top_truth if flow in reported) / top


class TestElasticSketch:
    def test_finds_heavy_hitters(self):
        truth = zipf_flows(2000, seed=1)
        sketch = ElasticSketch(buckets_per_stage=512, num_stages=4, light_counters=4096, seed=1)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        assert recall_of_top(sketch, truth) >= 0.8

    def test_small_flow_query_reasonable(self):
        sketch = ElasticSketch(buckets_per_stage=256, num_stages=2, light_counters=8192, seed=2)
        sketch.insert(5, 3)
        assert 0 < sketch.query(5) <= 10

    def test_same_flow_accumulates(self):
        sketch = ElasticSketch(64, 2, 256, seed=3)
        sketch.insert(9, 4)
        sketch.insert(9, 6)
        assert sketch.query(9) >= 10

    def test_for_memory_budget(self):
        sketch = ElasticSketch.for_memory(100_000)
        assert sketch.memory_bytes() <= 110_000

    def test_tracked_flows_and_light_view(self):
        sketch = ElasticSketch(64, 2, 128, seed=4)
        sketch.insert(1, 100)
        assert 1 in sketch.tracked_flows()
        assert len(sketch.light_counters_view()) == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticSketch(0, 1, 1)


class TestFCMSketch:
    def test_never_underestimates_much(self):
        truth = zipf_flows(1000, seed=5)
        sketch = FCMSketch(leaf_counters=8192, depth=2, seed=5)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        for flow, size in list(truth.items())[:100]:
            assert sketch.query(flow) >= min(size, 255) * 0.5

    def test_large_flow_overflow_chain(self):
        sketch = FCMSketch(leaf_counters=1024, depth=1, seed=6)
        sketch.insert(3, 100_000)
        assert sketch.query(3) >= 65_000

    def test_heavy_hitters(self):
        truth = zipf_flows(1500, seed=7)
        sketch = FCMSketch.for_memory(80_000, seed=7)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        assert recall_of_top(sketch, truth) >= 0.7

    def test_for_memory(self):
        sketch = FCMSketch.for_memory(100_000)
        assert sketch.memory_bytes() <= 120_000

    def test_leaf_counters_view(self):
        sketch = FCMSketch(256, depth=2)
        assert len(sketch.leaf_counters_view()) == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            FCMSketch(0)
        with pytest.raises(ValueError):
            FCMSketch(16, fanout=1)


class TestHashPipe:
    def test_finds_heavy_hitters(self):
        truth = zipf_flows(2000, seed=8)
        sketch = HashPipe(slots_per_stage=256, num_stages=6, seed=8)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        assert recall_of_top(sketch, truth) >= 0.8

    def test_small_flows_may_be_dropped(self):
        sketch = HashPipe(slots_per_stage=4, num_stages=2, seed=9)
        for flow in range(100):
            sketch.insert(flow, 1)
        # HashPipe keeps at most stages*slots flows.
        assert len(sketch.heavy_hitters(1)) <= 8

    def test_same_flow_merges_in_first_stage(self):
        sketch = HashPipe(slots_per_stage=64, num_stages=3, seed=10)
        sketch.insert(7, 5)
        sketch.insert(7, 5)
        assert sketch.query(7) >= 10

    def test_for_memory(self):
        sketch = HashPipe.for_memory(48_000)
        assert sketch.memory_bytes() <= 48_000

    def test_validation(self):
        with pytest.raises(ValueError):
            HashPipe(0)


class TestUnivMon:
    def test_heavy_hitters(self):
        truth = zipf_flows(1500, seed=11)
        sketch = UnivMon(width=1024, num_levels=8, topk=128, seed=11)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        assert recall_of_top(sketch, truth, threshold=100) >= 0.7

    def test_cardinality_order_of_magnitude(self):
        truth = zipf_flows(1000, seed=12, scale=50)
        sketch = UnivMon(width=2048, num_levels=10, topk=512, seed=12)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        estimate = sketch.cardinality()
        assert 300 <= estimate <= 3000

    def test_entropy_positive(self):
        truth = zipf_flows(500, seed=13)
        sketch = UnivMon(width=1024, num_levels=8, topk=256, seed=13)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        assert sketch.entropy() >= 0.0

    def test_level_sampling_monotone(self):
        sketch = UnivMon(width=64, num_levels=6, topk=16, seed=14)
        levels = [sketch._max_level(flow) for flow in range(2000)]
        # Roughly half the flows should stop at level 0.
        assert 0.3 < sum(1 for level in levels if level == 0) / len(levels) < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            UnivMon(0)


class TestCocoSketch:
    def test_total_count_conserved(self):
        truth = zipf_flows(500, seed=15)
        sketch = CocoSketch(num_slots=256, seed=15)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        assert sum(slot.count for slot in sketch._slots) == sum(truth.values())

    def test_heavy_hitters_survive(self):
        truth = zipf_flows(1000, seed=16)
        sketch = CocoSketch(num_slots=1024, seed=16)
        for flow, size in truth.items():
            sketch.insert(flow, size)
        assert recall_of_top(sketch, truth, top=5, threshold=100) >= 0.6

    def test_query_zero_for_absent_key(self):
        sketch = CocoSketch(num_slots=64, seed=17)
        sketch.insert(1, 10)
        assert sketch.query(999) in (0, 10)  # 0 unless it collides with flow 1

    def test_for_memory(self):
        sketch = CocoSketch.for_memory(8000)
        assert sketch.num_slots == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            CocoSketch(0)
