"""Acceptance tests for the columnar-first trace plane.

The contract under test: a trace consumed through the lazy row views and the
same trace consumed through its backing columns produce *bit-identical*
results — EpochTruth from the simulator, records from the streaming engine —
across seeds, ID widths, and replay formats, including a fault-schedule run.
"""

import numpy as np
import pytest

from repro.dataplane.config import SwitchResources
from repro.network.simulator import build_testbed_simulator
from repro.stream import (
    EventSchedule,
    FlowBurstEvent,
    LinkFailureEvent,
    LinkRecoveryEvent,
    LossRateShiftEvent,
    MemorySink,
    StreamingEngine,
    SyntheticSource,
    TraceFileSource,
    comparable,
    write_trace_file,
)
from repro.traffic.flow import FlowRecord, Trace, TraceColumns
from repro.traffic.generator import (
    generate_caida_like_trace,
    generate_workload,
    take_flows,
)

RESOURCES = SwitchResources.scaled(0.05)
SEEDS = (0, 1, 2)


def _row_rebuilt(trace: Trace) -> Trace:
    """The same trace, round-tripped through standalone FlowRecord objects."""
    return Trace(flows=[flow.to_record() for flow in trace.flows])


class TestFlowViewSemantics:
    def test_row_views_read_columns(self):
        trace = generate_workload("DCTCP", num_flows=20, victim_ratio=0.3, seed=1)
        columns = trace.columns()
        for index, flow in enumerate(trace.flows):
            assert flow.flow_id == int(columns.flow_ids[index])
            assert flow.size == int(columns.sizes[index])
            assert flow.is_victim == bool(columns.is_victim[index])
        assert all(isinstance(f.size, int) for f in trace.flows)

    def test_row_writes_reach_columns(self):
        trace = generate_workload("DCTCP", num_flows=5, seed=2)
        trace.flows[0].size = 123
        trace.flows[0].is_victim = True
        trace.flows[0].lost_packets = 7
        assert trace.columns().sizes[0] == 123
        assert bool(trace.columns().is_victim[0])
        assert trace.total_losses() >= 7

    def test_rebuild_from_records_is_identity(self):
        for seed in SEEDS:
            trace = generate_workload(
                "Hadoop", num_flows=30, victim_ratio=0.2, seed=seed
            )
            rebuilt = _row_rebuilt(trace)
            assert list(rebuilt.flows) == list(trace.flows)
            assert rebuilt.flow_sizes() == trace.flow_sizes()
            assert rebuilt.loss_map() == trace.loss_map()

    def test_frozen_trace_rejects_row_writes(self):
        trace = generate_workload("DCTCP", num_flows=4, seed=3).freeze()
        assert trace.frozen
        with pytest.raises((ValueError, RuntimeError)):
            trace.flows[0].size = 1

    def test_take_flows_shares_nothing_unexpected(self):
        trace = generate_caida_like_trace(num_flows=40, victim_flows=4, seed=4)
        subset = take_flows(trace, np.array([3, 1, 2]))
        assert [f.flow_id for f in subset.flows] == [
            trace.flows[3].flow_id, trace.flows[1].flow_id, trace.flows[2].flow_id
        ]


class TestRowColumnBitIdentity:
    """Acceptance: row-backed vs column-backed runs are bit-identical."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("use_five_tuple", [True, False])
    def test_epoch_truth_identical(self, seed, use_five_tuple):
        trace = generate_workload(
            "DCTCP",
            num_flows=150,
            victim_ratio=0.1,
            seed=seed,
            use_five_tuple=use_five_tuple,
        )
        row_trace = _row_rebuilt(trace)
        scalar_sim = build_testbed_simulator(resources=RESOURCES, seed=seed)
        batched_sim = build_testbed_simulator(resources=RESOURCES, seed=seed)
        truth_rows = scalar_sim.run_epoch(row_trace, batched=False)
        truth_cols = batched_sim.run_epoch(trace, batched=True)
        assert truth_rows.flow_sizes == truth_cols.flow_sizes
        assert truth_rows.losses == truth_cols.losses
        assert truth_rows.per_switch_flows == truth_cols.per_switch_flows

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rows_backend_consumed_both_ways(self, seed):
        # The retained rows generator feeds both pipelines identically too.
        trace = generate_workload(
            "VL2", num_flows=120, victim_ratio=0.15, seed=seed, backend="rows"
        )
        scalar_sim = build_testbed_simulator(resources=RESOURCES, seed=seed)
        batched_sim = build_testbed_simulator(resources=RESOURCES, seed=seed)
        truth_rows = scalar_sim.run_epoch(_row_rebuilt(trace), batched=False)
        truth_cols = batched_sim.run_epoch(trace, batched=True)
        assert truth_rows.flow_sizes == truth_cols.flow_sizes
        assert truth_rows.losses == truth_cols.losses

    def _fault_schedule(self):
        return EventSchedule([
            LinkFailureEvent(epoch=1, endpoint_a=("edge", 0),
                             endpoint_b=("host", 0), loss_rate=0.4),
            FlowBurstEvent(epoch=1, extra_flows=60, duration=2,
                           victim_ratio=0.1, loss_rate=0.05),
            LossRateShiftEvent(epoch=2, loss_rate=0.2),
            LinkRecoveryEvent(epoch=3, endpoint_a=("edge", 0),
                              endpoint_b=("host", 0)),
        ])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_schedule_stream_records_identical(self, tmp_path, seed):
        """Direct, JSONL replay, and binary replay all yield the same records
        under a live fault schedule (failures, bursts, loss shifts)."""
        source = SyntheticSource.steady(
            num_flows=100, epochs=4, victim_ratio=0.1, seed=seed
        )
        jsonl = str(tmp_path / f"s{seed}.jsonl")
        binary = str(tmp_path / f"s{seed}.rtbin")
        write_trace_file(jsonl, source)
        write_trace_file(binary, source)

        outputs = {}
        for label, src in (
            ("direct", source),
            ("jsonl", TraceFileSource(jsonl)),
            ("binary", TraceFileSource(binary)),
        ):
            sink = MemorySink()
            StreamingEngine(
                src,
                events=self._fault_schedule(),
                sinks=[sink],
                resources=RESOURCES,
                seed=seed,
            ).run()
            outputs[label] = [comparable(r) for r in sink.records]
        assert outputs["direct"] == outputs["jsonl"]
        assert outputs["direct"] == outputs["binary"]

    def test_binary_replay_preserves_numpy_free_records(self, tmp_path):
        # Regression (wide-ID spill + numpy scalars): an engine run over a
        # binary store must emit JSON-serializable records.
        import json

        source = SyntheticSource.steady(num_flows=50, epochs=2, victim_ratio=0.2,
                                        seed=5)
        path = str(tmp_path / "wide.rtbin")
        write_trace_file(path, source)
        sink = MemorySink()
        StreamingEngine(
            TraceFileSource(path), sinks=[sink], resources=RESOURCES, seed=5
        ).run()
        json.dumps(sink.records)  # raises TypeError on numpy leakage


class TestGeneratorBackends:
    def test_backends_agree_on_invariants(self):
        for backend in ("columns", "rows"):
            trace = generate_workload(
                "DCTCP", num_flows=80, victim_ratio=0.25, seed=6, backend=backend
            )
            assert len(trace) == 80
            assert trace.num_victims() == 20
            assert all(f.lost_packets >= 1 for f in trace.flows if f.is_victim)
            assert all(f.lost_packets <= f.size for f in trace.flows)

    def test_caida_backends_agree_on_invariants(self):
        for backend in ("columns", "rows"):
            trace = generate_caida_like_trace(
                num_flows=60, victim_flows=6, seed=7, backend=backend
            )
            assert len(trace) == 60
            assert trace.num_victims() == 6
            assert all(f.src_host is None for f in trace.flows)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            generate_workload("DCTCP", num_flows=5, backend="bogus")
        with pytest.raises(ValueError):
            generate_caida_like_trace(num_flows=5, backend="bogus")


class TestColumnOps:
    def test_concat_widens_ids(self):
        narrow = generate_caida_like_trace(num_flows=10, seed=8).columns()
        wide = generate_workload("DCTCP", num_flows=10, seed=8,
                                 use_five_tuple=True).columns()
        merged = TraceColumns.concat([narrow, wide])
        assert len(merged) == 20
        assert merged.wide_ids
        assert int(merged.flow_ids[0]) == int(narrow.flow_ids[0])

    def test_concat_empty_parts(self):
        empty = TraceColumns.empty()
        cols = generate_workload("DCTCP", num_flows=5, seed=9).columns()
        merged = TraceColumns.concat([empty, cols, empty])
        assert len(merged) == 5

    def test_with_loss_state_shares_identity_columns(self):
        cols = generate_workload("DCTCP", num_flows=8, seed=10).columns()
        new = cols.with_loss_state(
            np.ones(8, dtype=bool),
            np.full(8, 0.5),
            np.ones(8, dtype=np.int64),
        )
        assert new.flow_ids is cols.flow_ids
        assert new.sizes is cols.sizes
        assert bool(new.is_victim.all())
        assert not cols.is_victim.all()

    def test_trace_from_records_via_flows_kwarg(self):
        records = [FlowRecord(flow_id=i, size=i + 1) for i in range(5)]
        trace = Trace(flows=records)
        assert trace.flow_sizes() == {i: i + 1 for i in range(5)}
        with pytest.raises(ValueError):
            Trace(flows=records, columns=trace.columns())
