"""Tests for the ChameleMon data plane: config, classifier, encoders, edge switch."""

import pytest

from repro.dataplane.classifier import FlowClassifier
from repro.dataplane.config import EncoderLayout, MonitoringConfig, SwitchResources
from repro.dataplane.encoder import DownstreamFlowEncoder, UpstreamFlowEncoder, accumulate_parts
from repro.dataplane.hierarchy import FlowHierarchy
from repro.dataplane.switch import EdgeSwitch
from repro.sketches.fermat import MERSENNE_PRIME_61


def small_resources():
    return SwitchResources.scaled(0.05)


class TestConfig:
    def test_layout_invariants(self):
        resources = SwitchResources()
        layout = EncoderLayout(m_hh=1024, m_hl=2560, m_ll=512)
        layout.validate(resources)
        assert layout.m_uf == 4096

    def test_layout_must_fill_upstream(self):
        resources = SwitchResources()
        with pytest.raises(ValueError):
            EncoderLayout(m_hh=100, m_hl=100, m_ll=100).validate(resources)

    def test_layout_must_fit_downstream(self):
        resources = SwitchResources()
        with pytest.raises(ValueError):
            EncoderLayout(m_hh=0, m_hl=4000, m_ll=96).validate(resources)

    def test_layout_requires_hl(self):
        resources = SwitchResources()
        with pytest.raises(ValueError):
            EncoderLayout(m_hh=4096, m_hl=0, m_ll=0).validate(resources)

    def test_monitoring_config_validation(self):
        layout = SwitchResources().healthy_initial_layout()
        with pytest.raises(ValueError):
            MonitoringConfig(layout=layout, threshold_high=0)
        with pytest.raises(ValueError):
            MonitoringConfig(layout=layout, threshold_high=1, threshold_low=2)
        with pytest.raises(ValueError):
            MonitoringConfig(layout=layout, sample_rate=1.5)

    def test_initial_config_is_healthy(self):
        resources = SwitchResources()
        config = resources.initial_config()
        assert config.layout.m_ll == 0
        assert config.threshold_low == 1
        assert config.sample_rate == 1.0
        assert config.layout.m_hl == resources.min_hl_buckets

    def test_ill_layout_valid(self):
        resources = SwitchResources()
        resources.validate_layout(resources.ill_layout)

    def test_scaled_resources_valid(self):
        for scale in (0.05, 0.1, 0.5, 1.0):
            resources = SwitchResources.scaled(scale)
            resources.validate_layout(resources.ill_layout)
            resources.validate_layout(resources.healthy_initial_layout())

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            SwitchResources.scaled(0)

    def test_describe_contains_thresholds(self):
        config = SwitchResources().initial_config()
        assert "T_h=1" in config.describe()


class TestClassifier:
    def test_hierarchy_by_thresholds(self):
        resources = small_resources()
        classifier = FlowClassifier(resources, seed=1)
        config = MonitoringConfig(
            layout=resources.healthy_initial_layout(),
            threshold_high=100,
            threshold_low=10,
            sample_rate=1.0,
        )
        flow = 12345
        segments = classifier.classify_flow_packets(flow, 150, config)
        hierarchy_counts = {h: c for h, c in segments}
        assert hierarchy_counts[FlowHierarchy.SAMPLED_LL] == 9
        assert hierarchy_counts[FlowHierarchy.HL_CANDIDATE] == 90
        assert hierarchy_counts[FlowHierarchy.HH_CANDIDATE] == 51
        assert sum(hierarchy_counts.values()) == 150

    def test_segments_match_per_packet_classification(self):
        resources = small_resources()
        config = MonitoringConfig(
            layout=resources.healthy_initial_layout(),
            threshold_high=20,
            threshold_low=5,
            sample_rate=1.0,
        )
        chunked = FlowClassifier(resources, seed=2)
        per_packet = FlowClassifier(resources, seed=2)
        flow = 777
        segments = chunked.classify_flow_packets(flow, 40, config)
        expanded = [h for h, count in segments for _ in range(count)]
        singles = [per_packet.classify_packet(flow, config) for _ in range(40)]
        assert expanded == singles

    def test_thresholds_of_one_make_everything_hh(self):
        resources = small_resources()
        classifier = FlowClassifier(resources, seed=3)
        config = resources.initial_config()
        segments = classifier.classify_flow_packets(1, 10, config)
        assert segments == [(FlowHierarchy.HH_CANDIDATE, 10)]

    def test_sampling_is_deterministic_per_flow(self):
        resources = small_resources()
        classifier = FlowClassifier(resources, seed=4)
        config = MonitoringConfig(
            layout=resources.healthy_initial_layout(),
            threshold_high=1000,
            threshold_low=1000,
            sample_rate=0.5,
        )
        assert classifier.is_sampled(42, config) == classifier.is_sampled(42, config)

    def test_sampling_rate_roughly_respected(self):
        resources = small_resources()
        classifier = FlowClassifier(resources, seed=5)
        config = MonitoringConfig(
            layout=resources.healthy_initial_layout(),
            threshold_high=1000,
            threshold_low=1000,
            sample_rate=0.25,
        )
        sampled = sum(1 for flow in range(4000) if classifier.is_sampled(flow, config))
        assert 0.18 < sampled / 4000 < 0.32

    def test_sample_rate_zero_and_one(self):
        resources = small_resources()
        classifier = FlowClassifier(resources, seed=6)
        low = MonitoringConfig(layout=resources.healthy_initial_layout(),
                               threshold_high=10, threshold_low=10, sample_rate=0.0)
        high = MonitoringConfig(layout=resources.healthy_initial_layout(),
                                threshold_high=10, threshold_low=10, sample_rate=1.0)
        assert not any(classifier.is_sampled(flow, low) for flow in range(100))
        assert all(classifier.is_sampled(flow, high) for flow in range(100))

    def test_empty_flow(self):
        resources = small_resources()
        classifier = FlowClassifier(resources, seed=7)
        assert classifier.classify_flow_packets(1, 0, resources.initial_config()) == []


class TestEncoders:
    def test_upstream_routing_by_hierarchy(self):
        resources = small_resources()
        layout = resources.ill_layout
        encoder = UpstreamFlowEncoder(layout, resources, base_seed=1, prime=MERSENNE_PRIME_61)
        encoder.encode(1, 5, FlowHierarchy.HH_CANDIDATE)
        encoder.encode(2, 3, FlowHierarchy.HL_CANDIDATE)
        encoder.encode(3, 2, FlowHierarchy.SAMPLED_LL)
        encoder.encode(4, 9, FlowHierarchy.NON_SAMPLED_LL)
        assert encoder.parts.hh.decode_nondestructive().flows == {1: 5}
        assert encoder.parts.hl.decode_nondestructive().flows == {2: 3}
        assert encoder.parts.ll.decode_nondestructive().flows == {3: 2}

    def test_downstream_merges_hh_into_hl(self):
        resources = small_resources()
        layout = resources.ill_layout
        encoder = DownstreamFlowEncoder(layout, resources, base_seed=1, prime=MERSENNE_PRIME_61)
        encoder.encode(1, 5, FlowHierarchy.HH_CANDIDATE)
        encoder.encode(2, 3, FlowHierarchy.HL_CANDIDATE)
        assert encoder.parts.hh is None
        assert encoder.parts.hl.decode_nondestructive().flows == {1: 5, 2: 3}

    def test_upstream_downstream_hl_are_compatible(self):
        resources = small_resources()
        layout = resources.ill_layout
        up = UpstreamFlowEncoder(layout, resources, base_seed=3, prime=MERSENNE_PRIME_61)
        down = DownstreamFlowEncoder(layout, resources, base_seed=3, prime=MERSENNE_PRIME_61)
        assert up.parts.hl.compatible_with(down.parts.hl)
        assert up.parts.ll.compatible_with(down.parts.ll)

    def test_zero_size_parts_are_none(self):
        resources = small_resources()
        layout = resources.healthy_initial_layout()  # no LL encoder
        encoder = UpstreamFlowEncoder(layout, resources, base_seed=1)
        assert encoder.parts.ll is None
        # Encoding into a missing part must not raise.
        encoder.encode(9, 2, FlowHierarchy.SAMPLED_LL)

    def test_accumulate_parts(self):
        resources = small_resources()
        layout = resources.ill_layout
        a = UpstreamFlowEncoder(layout, resources, base_seed=5, prime=MERSENNE_PRIME_61)
        b = UpstreamFlowEncoder(layout, resources, base_seed=5, prime=MERSENNE_PRIME_61)
        a.encode(1, 2, FlowHierarchy.HL_CANDIDATE)
        b.encode(2, 4, FlowHierarchy.HL_CANDIDATE)
        total = accumulate_parts([a.parts.hl, b.parts.hl, None])
        assert total.decode_nondestructive().flows == {1: 2, 2: 4}
        assert accumulate_parts([None, None]) is None


class TestEdgeSwitch:
    def test_upstream_segments_total(self):
        switch = EdgeSwitch("e0", resources=small_resources(), base_seed=1)
        segments = switch.process_flow_upstream(123, 40)
        assert sum(count for _, count in segments) == 40
        assert switch.stats.packets_upstream == 40

    def test_downstream_encoding(self):
        switch = EdgeSwitch("e0", resources=small_resources(), base_seed=2)
        segments = switch.process_flow_upstream(55, 10)
        switch.process_flow_downstream(55, segments)
        assert switch.stats.packets_downstream == 10

    def test_config_staging_applies_next_epoch(self):
        resources = small_resources()
        switch = EdgeSwitch("e0", resources=resources, base_seed=3)
        new_config = MonitoringConfig(
            layout=resources.ill_layout, threshold_high=50, threshold_low=5, sample_rate=0.5
        )
        switch.apply_config(new_config)
        assert switch.config != new_config  # still the old epoch
        switch.rotate_epoch()
        assert switch.config == new_config

    def test_rotate_returns_finished_group(self):
        switch = EdgeSwitch("e0", resources=small_resources(), base_seed=4)
        switch.process_flow_upstream(9, 5)
        finished = switch.rotate_epoch()
        assert finished.upstream.parts.hh.decode_nondestructive().flows == {9: 5}
        # the new group is empty
        assert switch.stats.packets_upstream == 0

    def test_apply_config_validates_layout(self):
        resources = small_resources()
        switch = EdgeSwitch("e0", resources=resources)
        bad = MonitoringConfig(
            layout=EncoderLayout(m_hh=1, m_hl=1, m_ll=1), threshold_high=1, threshold_low=1
        )
        with pytest.raises(ValueError):
            switch.apply_config(bad)

    def test_memory_accounting_positive(self):
        switch = EdgeSwitch("e0", resources=small_resources())
        assert switch.memory_bytes() > 0

    def test_query_flow_size(self):
        switch = EdgeSwitch("e0", resources=small_resources(), base_seed=5)
        switch.process_flow_upstream(77, 12)
        assert switch.query_flow_size(77) >= 12
