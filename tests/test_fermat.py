"""Tests for FermatSketch: encode/decode, add/subtract, sizing, fingerprints."""

import random

import pytest

from repro.sketches.base import DecodeResult
from repro.sketches.fermat import (
    MERSENNE_PRIME_61,
    MERSENNE_PRIME_127,
    FermatSketch,
    minimum_memory_for_flows,
    packet_loss_sketch_pair,
    peeling_threshold,
)


def make_flows(count, seed=0, max_size=50):
    rng = random.Random(seed)
    flows = {}
    while len(flows) < count:
        flows[rng.randrange(1, 1 << 32)] = rng.randrange(1, max_size)
    return flows


class TestEncodeDecode:
    def test_single_flow(self):
        sketch = FermatSketch(16)
        sketch.insert(42, 7)
        result = sketch.decode()
        assert result.success
        assert result.flows == {42: 7}

    def test_many_flows_roundtrip(self):
        flows = make_flows(200, seed=1)
        sketch = FermatSketch.for_flow_count(200, load_factor=0.6, seed=1)
        for flow_id, size in flows.items():
            sketch.insert(flow_id, size)
        result = sketch.decode()
        assert result.success
        assert result.flows == flows

    def test_decode_empties_sketch(self):
        sketch = FermatSketch(32)
        sketch.insert(5, 3)
        sketch.insert(6, 4)
        result = sketch.decode()
        assert result.success
        assert sketch.is_empty()

    def test_nondestructive_decode(self):
        sketch = FermatSketch(32)
        sketch.insert(5, 3)
        result = sketch.decode_nondestructive()
        assert result.success
        assert not sketch.is_empty()
        # decoding again yields the same answer
        assert sketch.decode_nondestructive().flows == {5: 3}

    def test_empty_decode(self):
        result = FermatSketch(8).decode()
        assert result.success
        assert result.flows == {}

    def test_insert_zero_count_is_noop(self):
        sketch = FermatSketch(8)
        sketch.insert(1, 0)
        assert sketch.is_empty()

    def test_remove_cancels_insert(self):
        sketch = FermatSketch(8)
        sketch.insert(99, 5)
        sketch.remove(99, 5)
        assert sketch.is_empty()

    def test_overloaded_sketch_fails(self):
        flows = make_flows(500, seed=2)
        sketch = FermatSketch(64)  # 192 buckets for 500 flows: must fail
        for flow_id, size in flows.items():
            sketch.insert(flow_id, size)
        result = sketch.decode()
        assert not result.success
        assert result.remaining > 0

    def test_flow_id_must_fit_prime(self):
        sketch = FermatSketch(8, prime=101)
        with pytest.raises(ValueError):
            sketch.insert(500)

    def test_negative_flow_id_rejected(self):
        sketch = FermatSketch(8)
        with pytest.raises(ValueError):
            sketch.insert(-1)

    def test_large_flow_ids_with_large_prime(self):
        sketch = FermatSketch(32, prime=MERSENNE_PRIME_127)
        five_tuple_id = (1 << 100) + 12345
        sketch.insert(five_tuple_id, 9)
        assert sketch.decode().flows == {five_tuple_id: 9}

    def test_decode_result_repr(self):
        result = DecodeResult({1: 2}, True)
        assert "success=True" in repr(result)


class TestAdditionSubtraction:
    def test_subtract_gives_losses(self):
        flows = make_flows(100, seed=3)
        upstream, downstream = packet_loss_sketch_pair(100, seed=3)
        losses = {}
        rng = random.Random(3)
        for flow_id, size in flows.items():
            upstream.insert(flow_id, size)
            lost = rng.randrange(0, min(3, size + 1))
            if lost:
                losses[flow_id] = lost
            downstream.insert(flow_id, size - lost)
        delta = upstream - downstream
        result = delta.decode()
        assert result.success
        assert result.positive_flows() == losses

    def test_add_then_decode(self):
        a = FermatSketch(64, seed=5)
        b = a.empty_like()
        a.insert(1, 2)
        b.insert(2, 3)
        combined = a + b
        assert combined.decode().flows == {1: 2, 2: 3}

    def test_incompatible_sketches_rejected(self):
        a = FermatSketch(16, seed=1)
        b = FermatSketch(16, seed=2)
        with pytest.raises(ValueError):
            a.add(b)
        c = FermatSketch(32, seed=1)
        with pytest.raises(ValueError):
            a.subtract(c)

    def test_subtract_identical_is_empty(self):
        a = FermatSketch(16, seed=1)
        a.insert(7, 3)
        b = a.copy()
        assert (a - b).is_empty()

    def test_copy_is_independent(self):
        a = FermatSketch(16)
        a.insert(1)
        b = a.copy()
        b.insert(2)
        assert a.decode_nondestructive().flows == {1: 1}

    def test_empty_like_shares_hashes(self):
        a = FermatSketch(16, seed=9)
        b = a.empty_like()
        assert a.compatible_with(b)


class TestFingerprints:
    def test_fingerprint_roundtrip(self):
        sketch = FermatSketch(64, fingerprint_bits=8, seed=4)
        flows = make_flows(50, seed=4)
        for flow_id, size in flows.items():
            sketch.insert(flow_id, size)
        result = sketch.decode()
        assert result.success
        assert result.flows == flows

    def test_fingerprint_increases_memory(self):
        plain = FermatSketch(64)
        with_fp = FermatSketch(64, fingerprint_bits=8)
        assert with_fp.memory_bytes() > plain.memory_bytes()

    def test_fingerprint_pair_subtract(self):
        up = FermatSketch(64, fingerprint_bits=8, seed=6)
        down = up.empty_like()
        up.insert(10, 5)
        down.insert(10, 3)
        assert (up - down).decode().flows == {10: 2}


class TestSizingHelpers:
    def test_peeling_threshold_values(self):
        # Theorem 3.1: c_3 = 1.23, c_4 = 1.30, c_5 = 1.43 (to two decimals).
        assert peeling_threshold(3) == pytest.approx(1.22, abs=0.02)
        assert peeling_threshold(4) == pytest.approx(1.29, abs=0.02)
        assert peeling_threshold(5) == pytest.approx(1.42, abs=0.03)
        assert peeling_threshold(2) == 2.0

    def test_peeling_threshold_rejects_d1(self):
        with pytest.raises(ValueError):
            peeling_threshold(1)

    def test_for_flow_count_load(self):
        sketch = FermatSketch.for_flow_count(700, load_factor=0.7)
        assert sketch.total_buckets() >= 1000

    def test_for_flow_count_validation(self):
        with pytest.raises(ValueError):
            FermatSketch.for_flow_count(0)
        with pytest.raises(ValueError):
            FermatSketch.for_flow_count(10, load_factor=1.5)

    def test_minimum_memory_scales_linearly(self):
        small = minimum_memory_for_flows(1000)
        large = minimum_memory_for_flows(10000)
        assert 8 < large / small < 12

    def test_memory_bytes(self):
        sketch = FermatSketch(100, num_arrays=3)
        assert sketch.memory_bytes() == 100 * 3 * 8

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FermatSketch(0)
        with pytest.raises(ValueError):
            FermatSketch(8, num_arrays=1)
        with pytest.raises(ValueError):
            FermatSketch(8, prime=1)
        with pytest.raises(ValueError):
            FermatSketch(8, fingerprint_bits=-1)

    def test_load_factor(self):
        sketch = FermatSketch(100, num_arrays=3)
        assert sketch.load_factor(150) == pytest.approx(0.5)


class TestDecodeRobustness:
    def test_high_load_below_threshold_decodes(self):
        # 1000 flows in 1.3x buckets (load ~0.77 < 0.813) should usually decode.
        flows = make_flows(1000, seed=7)
        sketch = FermatSketch(434, num_arrays=3, seed=7)
        for flow_id, size in flows.items():
            sketch.insert(flow_id, size)
        assert sketch.decode().success

    def test_decoded_sizes_exact(self):
        flows = make_flows(300, seed=8, max_size=10_000)
        sketch = FermatSketch.for_flow_count(300, load_factor=0.5, seed=8)
        for flow_id, size in flows.items():
            sketch.insert(flow_id, size)
        assert sketch.decode().flows == flows

    def test_encode_trace(self):
        sketch = FermatSketch(32)
        sketch.encode_trace([1, 1, 2, 3, 3, 3])
        assert sketch.decode().flows == {1: 2, 2: 1, 3: 3}
