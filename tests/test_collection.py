"""Tests for the epoch/collection protocol model (appendix B)."""

import pytest

from repro.controlplane.collection import (
    CollectionScheduler,
    EpochClock,
    group_in_use,
    safe_to_collect,
)
from repro.controlplane.timing import CollectionModel, TOTAL_COLLECTION_MS
from repro.dataplane.config import SwitchResources


class TestEpochClock:
    def test_timestamp_flips_every_epoch(self):
        clock = EpochClock(epoch_length_ms=50)
        assert clock.timestamp_at(0) == 0
        assert clock.timestamp_at(49.9) == 0
        assert clock.timestamp_at(50.1) == 1
        assert clock.timestamp_at(100.1) == 0

    def test_offset_shifts_the_flip(self):
        clock = EpochClock(epoch_length_ms=50, offset_ms=5)
        # Local time is 5 ms ahead: the flip happens 5 ms earlier in controller time.
        assert clock.timestamp_at(44.9) == 0
        assert clock.timestamp_at(45.1) == 1

    def test_epoch_index(self):
        clock = EpochClock(epoch_length_ms=50)
        assert clock.epoch_index_at(0) == 0
        assert clock.epoch_index_at(125) == 2

    def test_next_flip(self):
        clock = EpochClock(epoch_length_ms=50)
        assert clock.next_flip_after(10) == 50
        assert clock.next_flip_after(50.1) == 100

    def test_group_in_use_alternates(self):
        clock = EpochClock(epoch_length_ms=50)
        assert group_in_use(clock, 10) == 0
        assert group_in_use(clock, 60) == 1


class TestCollectionScheduler:
    def test_window_ordering(self):
        scheduler = CollectionScheduler(epoch_length_ms=50, sync_guard_ms=1, drain_ms=10)
        window = scheduler.window_for_epoch(3)
        assert window.is_valid()
        # The epoch ends at 200 ms; ingress readable after the guard, egress
        # only after the drain, everything done before the next flip guard.
        assert window.ingress_start_ms == pytest.approx(201)
        assert window.egress_start_ms == pytest.approx(210)
        assert window.end_ms == pytest.approx(249)

    def test_testbed_collection_fits_50ms_epoch(self):
        scheduler = CollectionScheduler(
            epoch_length_ms=50, sync_guard_ms=1, drain_ms=10,
            switch_offsets_ms=(0.3, -0.4, 0.5, -0.2),
        )
        model = CollectionModel(SwitchResources())
        assert scheduler.is_feasible(model.collection_time_ms() - TOTAL_COLLECTION_MS + 5)

    def test_infeasible_when_clock_error_exceeds_guard(self):
        scheduler = CollectionScheduler(
            epoch_length_ms=50, sync_guard_ms=1, drain_ms=10,
            switch_offsets_ms=(5.0,),
        )
        assert not scheduler.is_feasible(1.0)

    def test_minimum_epoch_length_monotone(self):
        scheduler = CollectionScheduler(sync_guard_ms=1, drain_ms=10)
        fast = scheduler.minimum_epoch_length_ms(2.0)
        slow = scheduler.minimum_epoch_length_ms(20.0)
        assert fast < slow
        assert fast > 10  # must at least cover the drain + guards

    def test_safe_to_collect_ingress_vs_egress(self):
        scheduler = CollectionScheduler(epoch_length_ms=50, sync_guard_ms=1, drain_ms=10)
        # 205 ms: epoch 3 has ended, in-flight packets have not drained yet.
        assert safe_to_collect(scheduler, 3, 205, egress=False)
        assert not safe_to_collect(scheduler, 3, 205, egress=True)
        assert safe_to_collect(scheduler, 3, 215, egress=True)
        # Too late: the next epoch of the same group is about to start.
        assert not safe_to_collect(scheduler, 3, 249.5, egress=True)
