"""Tests for the scenario registry, sweep runner, and result serialization."""

import json

import pytest

from repro.scenarios import (
    RunResult,
    Scenario,
    SweepResult,
    SweepRunner,
    get_scenario,
    iter_scenarios,
    run_scenario,
    scenario_names,
)
from repro.scenarios.results import normalize_output, rows_to_csv
from repro.scenarios.spec import ScenarioError, coerce

#: Figures every registry round-trip test must cover (the full catalog).
EXPECTED_SCENARIOS = {
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "workloads", "overheads", "ablation_classifier", "ablation_fermat",
    "backend_speedup", "demo",
    "stream_timeline", "stream_failover", "stream_multitenant",
    "serve_chaos",
}


class TestRegistry:
    def test_catalog_covers_every_figure(self):
        assert EXPECTED_SCENARIOS <= set(scenario_names())

    def test_get_unknown_scenario_lists_names(self):
        with pytest.raises(KeyError, match="fig4"):
            get_scenario("not_a_scenario")

    def test_iter_scenarios_is_sorted(self):
        names = [spec.name for spec in iter_scenarios()]
        assert names == sorted(names)

    def test_every_scenario_declares_smoke_or_is_cheap(self):
        for spec in iter_scenarios():
            # Every catalog entry must be runnable at tiny sizes in CI.
            assert isinstance(spec.smoke, dict)

    def test_axis_must_be_a_parameter(self):
        with pytest.raises(ScenarioError):
            Scenario(name="x", title="x", func=lambda p, s: [], params={}, axis="nope")

    def test_axis_default_must_be_a_sequence(self):
        with pytest.raises(ScenarioError):
            Scenario(
                name="x", title="x", func=lambda p, s: [], params={"a": 3}, axis="a"
            )


class TestParameterHandling:
    def test_unknown_override_rejected(self):
        spec = get_scenario("fig4")
        with pytest.raises(ScenarioError, match="no parameter"):
            spec.merged_params({"bogus": 1})

    def test_string_coercion_scalar_and_list(self):
        spec = get_scenario("fig4")
        params = spec.merged_params({"flows": "250", "victims": "10,20,30"})
        assert params["flows"] == 250
        assert params["victims"] == (10, 20, 30)

    def test_scalar_axis_override_becomes_single_point(self):
        spec = get_scenario("fig4")
        points = spec.sweep_points({"victims": 40})
        assert len(points) == 1
        assert points[0]["victims"] == 40

    def test_bad_string_raises(self):
        with pytest.raises(ScenarioError):
            coerce("abc", 3, name="flows")

    def test_coerce_float_and_bool(self):
        assert coerce("0.5", 1.0) == 0.5
        assert coerce("true", False) is True
        assert coerce("0", True) is False

    def test_seed_policies(self):
        spec = get_scenario("fig4")
        assert spec.point_seed(None, 3) == spec.seed  # shared policy
        offset = Scenario(
            name="o", title="o", func=lambda p, s: [], params={}, seed=10,
            seed_policy="offset",
        )
        assert [offset.point_seed(None, i) for i in range(3)] == [10, 11, 12]
        assert offset.point_seed(100, 2) == 102


class TestNormalizeOutput:
    def test_list_of_rows(self):
        rows, extras = normalize_output([{"a": 1}])
        assert rows == [{"a": 1}] and extras == {}

    def test_single_row_dict(self):
        rows, extras = normalize_output({"a": 1})
        assert rows == [{"a": 1}] and extras == {}

    def test_rows_and_extras(self):
        rows, extras = normalize_output({"rows": [{"a": 1}], "extras": {"b": 2}})
        assert rows == [{"a": 1}] and extras == {"b": 2}

    def test_bad_output_rejected(self):
        with pytest.raises(TypeError):
            normalize_output(42)


class TestSerialization:
    def test_csv_unions_columns(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"
        assert lines[2] == ",2"

    def test_run_result_round_trip(self, tmp_path):
        result = RunResult(
            scenario="x", params={"victims": (1, 2)}, seed=3,
            rows=[{"a": 1.5}], extras={"ok": True}, wall_seconds=0.1,
        )
        payload = json.loads(result.to_json())
        assert payload["params"]["victims"] == [1, 2]
        assert payload["rows"] == [{"a": 1.5}]
        path = tmp_path / "result.json"
        result.to_json(path=str(path))
        assert json.loads(path.read_text())["scenario"] == "x"


#: Tiny per-scenario overrides: every registered scenario must run fast and
#: produce a schema-valid, JSON/CSV-serializable result (registry round-trip).
@pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
def test_registry_round_trip(name):
    spec = get_scenario(name)
    result = run_scenario(name, overrides=spec.smoke)
    assert isinstance(result, SweepResult)
    assert result.scenario == name
    assert result.points, "scenario produced no sweep points"
    for point in result.points:
        assert isinstance(point, RunResult)
        assert point.scenario == name
        assert point.rows, "sweep point produced no rows"
        assert all(isinstance(row, dict) and row for row in point.rows)
        assert point.wall_seconds >= 0.0
        assert isinstance(point.params, dict)
    # Round-trips: dict -> json -> parse, and CSV with a header line.
    payload = json.loads(result.to_json())
    assert payload["scenario"] == name
    assert len(payload["points"]) == len(result.points)
    csv_lines = result.to_csv().splitlines()
    assert len(csv_lines) == 1 + len(result.rows())


def _toy_point(params, seed):
    """Module-level so the process pool can pickle it by reference."""
    return [{"x": params["x"], "seed": seed, "double": params["x"] * 2}]


class TestSweepRunner:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_unregistered_scenario_runs_serially(self):
        spec = Scenario(
            name="adhoc", title="ad hoc", func=_toy_point,
            params={"x": (1, 2, 3)}, axis="x", seed=5,
        )
        result = SweepRunner().run(spec)
        assert [row["x"] for row in result.rows()] == [1, 2, 3]
        assert all(row["seed"] == 5 for row in result.rows())

    def test_unregistered_scenario_runs_in_parallel(self):
        spec = Scenario(
            name="adhoc", title="ad hoc", func=_toy_point,
            params={"x": (1, 2, 3, 4)}, axis="x", seed=0, seed_policy="offset",
        )
        serial = SweepRunner(jobs=1).run(spec)
        parallel = SweepRunner(jobs=3).run(spec)
        assert serial.rows() == parallel.rows()
        assert [row["seed"] for row in parallel.rows()] == [0, 1, 2, 3]

    def test_explicit_seed_reaches_every_point(self):
        result = run_scenario(
            "fig4", overrides=dict(flows=120, victims=(10, 20), trials=1), seed=123
        )
        assert [point.seed for point in result.points] == [123, 123]
        assert result.seed == 123

    @pytest.mark.parametrize("name", ["fig7", "fig11"])
    def test_serial_and_parallel_rows_identical(self, name):
        """--jobs 4 must be bit-identical to the serial run (per ISSUE 3)."""
        spec = get_scenario(name)
        serial = run_scenario(name, overrides=spec.smoke, jobs=1)
        parallel = run_scenario(name, overrides=spec.smoke, jobs=4)
        assert len(serial.points) >= 2, "need a real sweep to exercise the pool"
        assert serial.rows() == parallel.rows()
        assert [p.seed for p in serial.points] == [p.seed for p in parallel.points]
        assert [p.params for p in serial.points] == [p.params for p in parallel.points]
        assert [p.extras for p in serial.points] == [p.extras for p in parallel.points]
