"""Tests for the Tower+Fermat combination (Figure 11's subject)."""

import random

import pytest

from repro.core.tower_fermat import TowerFermat


def zipf_flows(count, seed=0, scale=5000):
    rng = random.Random(seed)
    return {
        flow: max(1, int(scale / (rank + 1)))
        for rank, flow in enumerate(rng.sample(range(1, 1 << 30), count))
    }


class TestTowerFermat:
    def test_small_flows_use_tower(self):
        combo = TowerFermat([(8, 4096), (16, 2048)], fermat_buckets=300, threshold=100, seed=1)
        combo.insert(7, 20)
        assert combo.query(7) == 20
        assert combo.flowset() == {}

    def test_large_flow_promoted_to_fermat(self):
        combo = TowerFermat([(8, 4096), (16, 2048)], fermat_buckets=300, threshold=100, seed=2)
        combo.insert(9, 500)
        flowset = combo.flowset()
        assert 9 in flowset
        # T_h - 1 packets stayed in the tower, the rest reached the Fermat part,
        # so the combined estimate is exact for an isolated flow.
        assert flowset[9] == 500 - 99
        assert combo.query(9) == 500

    def test_heavy_hitters(self):
        truth = zipf_flows(1000, seed=3)
        combo = TowerFermat.for_memory(200_000, threshold=50, seed=3)
        for flow, size in truth.items():
            combo.insert(flow, size)
        truth_hh = {flow for flow, size in truth.items() if size > 200}
        reported = combo.heavy_hitters(200)
        found = sum(1 for flow in truth_hh if flow in reported)
        assert found / len(truth_hh) > 0.9

    def test_flow_size_accuracy(self):
        truth = zipf_flows(2000, seed=4, scale=2000)
        combo = TowerFermat.for_memory(200_000, threshold=100, seed=4)
        for flow, size in truth.items():
            combo.insert(flow, size)
        errors = [abs(combo.query(flow) - size) / size for flow, size in truth.items()]
        assert sum(errors) / len(errors) < 0.25

    def test_cardinality(self):
        truth = zipf_flows(1500, seed=5, scale=200)
        combo = TowerFermat.for_memory(150_000, threshold=100, seed=5)
        for flow, size in truth.items():
            combo.insert(flow, size)
        assert abs(combo.cardinality() - 1500) / 1500 < 0.1

    def test_entropy_positive(self):
        truth = zipf_flows(500, seed=6)
        combo = TowerFermat.for_memory(100_000, threshold=100, seed=6)
        for flow, size in truth.items():
            combo.insert(flow, size)
        assert combo.entropy(iterations=2) > 0

    def test_distribution_contains_small_sizes(self):
        combo = TowerFermat.for_memory(100_000, threshold=100, seed=7)
        for flow in range(200):
            combo.insert(flow + 1, 2)
        distribution = combo.flow_size_distribution(iterations=2)
        assert distribution.get(2, 0) > 100

    def test_incremental_insert_matches_bulk(self):
        a = TowerFermat([(8, 2048), (16, 1024)], fermat_buckets=300, threshold=50, seed=8)
        b = TowerFermat([(8, 2048), (16, 1024)], fermat_buckets=300, threshold=50, seed=8)
        a.insert(42, 200)
        for _ in range(200):
            b.insert(42, 1)
        assert a.query(42) == b.query(42)

    def test_memory_accounting(self):
        combo = TowerFermat.for_memory(100_000, seed=9)
        assert combo.memory_bytes() <= 130_000

    def test_for_memory_never_exceeds_budget(self):
        # Regression: small budgets used to keep the full Fermat allocation
        # (max(64, ...) silently overshot), so Figure 11 points below the
        # Fermat footprint were not memory-matched.
        for budget in [128, 1024, 2048, 4096, 10_000, 20_001, 64_000, 100_000, 1 << 20]:
            combo = TowerFermat.for_memory(budget, seed=1)
            assert combo.memory_bytes() <= budget, budget
        with pytest.raises(ValueError):
            TowerFermat.for_memory(64)

    def test_for_memory_keeps_fermat_when_budget_allows(self):
        combo = TowerFermat.for_memory(100_000, seed=2)
        # 2500 buckets -> 833 per array * 3 arrays * 8 bytes.
        assert combo.fermat.total_buckets() == 833 * 3

    def test_insert_batch_equivalent(self):
        ids = list(range(1, 400))
        sizes = [(7 * i) % 300 + 1 for i in ids]
        a = TowerFermat([(8, 1024), (16, 512)], fermat_buckets=400, threshold=60, seed=3)
        b = TowerFermat([(8, 1024), (16, 512)], fermat_buckets=400, threshold=60, seed=3)
        for flow_id, size in zip(ids, sizes):
            a.insert(flow_id, size)
        b.insert_batch(ids, sizes)
        assert a.flowset() == b.flowset()
        assert all(a.query(f) == b.query(f) for f in ids[:100])

    def test_flowset_cache_invalidation(self):
        combo = TowerFermat([(8, 1024), (16, 512)], fermat_buckets=300, threshold=10, seed=10)
        combo.insert(1, 50)
        first = combo.flowset()
        combo.insert(2, 60)
        second = combo.flowset()
        assert 2 in second and 2 not in first
