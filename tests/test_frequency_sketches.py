"""Tests for the packet-accumulation baselines: CM, CU, CountSketch/CountHeap."""

import random

import pytest

from repro.sketches.cm import CountMinSketch, CUSketch
from repro.sketches.countsketch import CountHeap, CountSketch


def zipf_flows(count, seed=0):
    rng = random.Random(seed)
    return {flow: max(1, int(1000 / (rank + 1))) for rank, flow in enumerate(
        rng.sample(range(1, 1 << 30), count)
    )}


class TestCountMin:
    def test_never_underestimates(self):
        truth = zipf_flows(500, seed=1)
        cm = CountMinSketch(width=2048, depth=3, seed=1)
        for flow, size in truth.items():
            cm.insert(flow, size)
        assert all(cm.query(flow) >= size for flow, size in truth.items())

    def test_exact_when_sparse(self):
        cm = CountMinSketch(width=4096, depth=3, seed=2)
        cm.insert(77, 13)
        assert cm.query(77) == 13

    def test_for_memory(self):
        cm = CountMinSketch.for_memory(120_000, depth=3)
        assert cm.memory_bytes() <= 120_000
        assert cm.width == 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(0)
        with pytest.raises(ValueError):
            CountMinSketch(10, 0)


class TestCU:
    def test_never_underestimates(self):
        truth = zipf_flows(500, seed=3)
        cu = CUSketch(width=2048, depth=3, seed=3)
        for flow, size in truth.items():
            cu.insert(flow, size)
        assert all(cu.query(flow) >= size for flow, size in truth.items())

    def test_tighter_than_cm(self):
        truth = zipf_flows(2000, seed=4)
        cm = CountMinSketch(width=1024, depth=3, seed=4)
        cu = CUSketch(width=1024, depth=3, seed=4)
        for flow, size in truth.items():
            cm.insert(flow, size)
            cu.insert(flow, size)
        cm_error = sum(cm.query(flow) - size for flow, size in truth.items())
        cu_error = sum(cu.query(flow) - size for flow, size in truth.items())
        assert cu_error <= cm_error

    def test_for_memory(self):
        cu = CUSketch.for_memory(60_000)
        assert cu.memory_bytes() <= 60_000


class TestCountSketch:
    def test_roughly_unbiased(self):
        truth = zipf_flows(1000, seed=5)
        cs = CountSketch(width=4096, depth=5, seed=5)
        for flow, size in truth.items():
            cs.insert(flow, size)
        errors = [cs.query(flow) - size for flow, size in truth.items()]
        mean_error = sum(errors) / len(errors)
        assert abs(mean_error) < 20

    def test_exact_when_sparse(self):
        cs = CountSketch(width=4096, depth=3, seed=6)
        cs.insert(42, 100)
        assert cs.query(42) == 100

    def test_query_clamps_to_zero(self):
        cs = CountSketch(width=4, depth=3, seed=7)
        for flow in range(100):
            cs.insert(flow, 5)
        assert cs.query(123456789) >= 0


class TestCountHeap:
    def test_tracks_heavy_hitters(self):
        truth = zipf_flows(2000, seed=8)
        heap = CountHeap(width=2048, depth=3, heap_capacity=64, seed=8)
        for flow, size in truth.items():
            heap.insert(flow, size)
        top_truth = sorted(truth, key=truth.get, reverse=True)[:10]
        reported = heap.heavy_hitters(threshold=50)
        hits = sum(1 for flow in top_truth if flow in reported)
        assert hits >= 7

    def test_heap_capacity_respected(self):
        heap = CountHeap(width=256, depth=3, heap_capacity=16, seed=9)
        for flow in range(200):
            heap.insert(flow, flow + 1)
        assert len(heap._members) <= 16

    def test_query_falls_back_to_sketch(self):
        heap = CountHeap(width=1024, depth=3, heap_capacity=4, seed=10)
        for flow in range(50):
            heap.insert(flow, 10)
        assert heap.query(3) >= 0

    def test_for_memory(self):
        heap = CountHeap.for_memory(200_000, heap_capacity=1000)
        assert heap.memory_bytes() <= 210_000

    def test_validation(self):
        with pytest.raises(ValueError):
            CountHeap(16, heap_capacity=0)
