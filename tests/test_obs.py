"""Tests for the repro.obs observability plane: metrics, tracing, exposition,
report aggregation, and the identity contract (traced == untraced)."""

import json
import urllib.request

import pytest

from repro.cli import main
from repro.dataplane.config import SwitchResources
from repro.obs import (
    DEFAULT_MS_BUCKETS,
    TIMING_FIELDS,
    Counter,
    EpochMetrics,
    Histogram,
    JsonlSpanSink,
    MetricError,
    MetricsRegistry,
    MetricsServer,
    NULL_TRACER,
    StageTracer,
    aggregate_spans,
    comparable,
    comparable_checkpoint,
    comparable_records,
    load_spans,
    prometheus_text,
    render_report,
    report_dict,
    snapshot,
    stage_millis,
    write_snapshot,
)
from repro.stream import MemorySink, StreamingEngine, SyntheticSource

RESOURCES = SwitchResources.scaled(0.05)


def make_engine(source, **kwargs):
    return StreamingEngine(
        source, resources=RESOURCES, seed=3, pipelined=False, **kwargs
    )


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_labeled_children_are_independent(self):
        counter = MetricsRegistry().counter("c_total", labels=("part",))
        counter.labels(part="hh").inc(2)
        counter.labels(part="hl").inc(5)
        assert dict(counter.samples()) != {}
        assert counter.labels(part="hh").value == 2
        assert counter.labels(part="hl").value == 5

    def test_unlabeled_access_on_labeled_family_rejected(self):
        counter = MetricsRegistry().counter("c_total", labels=("part",))
        with pytest.raises(MetricError):
            counter.inc()

    def test_wrong_label_names_rejected(self):
        counter = MetricsRegistry().counter("c_total", labels=("part",))
        with pytest.raises(MetricError):
            counter.labels(shard="0")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_observe_lands_in_upper_bound_inclusive_bucket(self):
        hist = MetricsRegistry().histogram("h_ms", buckets=(1.0, 5.0, 10.0))
        for value in (0.2, 1.0, 3.0, 100.0):
            hist.observe(value)
        child = hist._unlabeled()
        # value == edge counts in that bucket (Prometheus convention).
        assert child.bucket_counts == [2, 1, 0, 1]
        assert child.count == 4
        assert child.sum == pytest.approx(104.2)

    def test_cumulative_buckets_end_with_inf(self):
        hist = MetricsRegistry().histogram("h_ms", buckets=(1.0, 5.0))
        hist.observe(0.5)
        hist.observe(50.0)
        buckets = hist._unlabeled().cumulative_buckets()
        assert buckets == [(1.0, 1), (5.0, 1), (float("inf"), 2)]

    def test_unsorted_edges_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", buckets=(5.0, 1.0))

    def test_merge_is_linear(self):
        """merge(observe A, observe B) == observe(A + B), exactly."""
        values_a = [0.1, 0.5, 2.0, 7.7, 40.0, 9999.0]
        values_b = [0.5, 1.0, 25.0, 25.0, 123456.0]
        reg = MetricsRegistry()
        combined = reg.histogram("h_all")
        part_a = reg.histogram("h_a")
        part_b = reg.histogram("h_b")
        for value in values_a + values_b:
            combined.observe(value)
        for value in values_a:
            part_a.observe(value)
        for value in values_b:
            part_b.observe(value)
        part_a.merge(part_b._unlabeled())
        merged = part_a._unlabeled()
        reference = combined._unlabeled()
        assert merged.bucket_counts == reference.bucket_counts
        assert merged.count == reference.count
        assert merged.sum == pytest.approx(reference.sum)

    def test_merge_rejects_different_edges(self):
        reg = MetricsRegistry()
        a = reg.histogram("h_a", buckets=(1.0, 2.0))
        b = reg.histogram("h_b", buckets=(1.0, 3.0))
        with pytest.raises(MetricError):
            a.merge(b._unlabeled())


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("c_total") is reg.counter("c_total")

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(MetricError):
            reg.gauge("m")

    def test_label_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", labels=("part",))
        with pytest.raises(MetricError):
            reg.counter("m", labels=("shard",))

    def test_invalid_name_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("bad name")

    def test_collect_preserves_registration_order(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        reg.gauge("b")
        reg.histogram("c_ms")
        assert [m.name for m in reg.collect()] == ["a_total", "b", "c_ms"]


class TestEpochMetrics:
    def test_observe_populates_standard_instruments(self):
        reg = MetricsRegistry()
        instruments = EpochMetrics(reg)
        record = {
            "epoch": 0, "num_flows": 100, "packets": 5000, "lost_packets": 40,
            "level": 2, "rolling_f1": 0.9, "rolling_are": 0.1,
            "wall_ms": 12.0, "decode_ms": 4.0,
        }
        instruments.observe(
            record,
            decode_success={"hh": True, "hl": False},
            merge_bytes=2048,
        )
        assert reg.get("repro_epochs_total").value == 1
        assert reg.get("repro_packets_total").value == 5000
        assert reg.get("repro_lost_packets_total").value == 40
        assert reg.get("repro_decode_success_total").labels(part="hh").value == 1
        assert reg.get("repro_decode_failure_total").labels(part="hl").value == 1
        assert reg.get("repro_level_epochs_total").labels(level=2).value == 1
        assert reg.get("repro_shard_merge_bytes_total").value == 2048
        assert reg.get("repro_rolling_f1").value == pytest.approx(0.9)
        assert reg.get("repro_epoch_wall_ms").count == 1


# --------------------------------------------------------------------------- #
# tracing
# --------------------------------------------------------------------------- #
class TestStageTracer:
    def test_spans_nest_into_hierarchical_paths(self):
        tracer = StageTracer()
        with tracer.span("epoch"):
            with tracer.span("simulate"):
                with tracer.span("merge"):
                    pass
            with tracer.span("analyze"):
                pass
        paths = sorted("/".join(s.path) for s in tracer.drain())
        assert paths == [
            "epoch", "epoch/analyze", "epoch/simulate", "epoch/simulate/merge",
        ]

    def test_durations_are_positive_and_nested_spans_fit_in_parent(self):
        tracer = StageTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {s.name: s for s in tracer.drain()}
        assert spans["inner"].duration_ns >= 0
        assert spans["outer"].duration_ns >= spans["inner"].duration_ns

    def test_set_epoch_stamps_spans(self):
        tracer = StageTracer()
        tracer.set_epoch(7)
        with tracer.span("epoch"):
            pass
        (span,) = tracer.drain()
        assert span.epoch == 7

    def test_explicit_epoch_wins_over_current(self):
        tracer = StageTracer()
        tracer.set_epoch(3)
        with tracer.span("generate", epoch=4):
            pass
        (span,) = tracer.drain()
        assert span.epoch == 4

    def test_drain_upto_epoch_leaves_future_spans_pending(self):
        tracer = StageTracer()
        with tracer.span("epoch", epoch=0):
            pass
        with tracer.span("generate", epoch=1):
            pass
        drained = tracer.drain(upto_epoch=0)
        assert [s.epoch for s in drained] == [0]
        assert tracer.pending == 1
        assert [s.epoch for s in tracer.drain(upto_epoch=1)] == [1]

    def test_unstamped_spans_always_drain(self):
        tracer = StageTracer()
        with tracer.span("setup"):
            pass
        assert len(tracer.drain(upto_epoch=0)) == 1

    def test_ingest_reroots_under_current_stack(self):
        tracer = StageTracer()
        tracer.set_epoch(2)
        shipped = [
            {"name": "classify_encode", "path": ["classify_encode"],
             "shard": 1, "start_ns": 0, "duration_ns": 500},
            {"name": "loss_apply", "path": ["classify_encode", "loss_apply"],
             "shard": 1, "start_ns": 0, "duration_ns": 100},
        ]
        with tracer.span("epoch"):
            with tracer.span("simulate"):
                tracer.ingest(shipped)
        spans = {"/".join(s.path): s for s in tracer.drain()}
        assert "epoch/simulate/classify_encode" in spans
        assert "epoch/simulate/classify_encode/loss_apply" in spans
        ingested = spans["epoch/simulate/classify_encode"]
        assert ingested.shard == 1
        assert ingested.epoch == 2

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything"):
            pass
        NULL_TRACER.set_epoch(5)
        NULL_TRACER.ingest([{"name": "x", "duration_ns": 1}])
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.enabled is False

    def test_stage_millis_totals_by_path(self):
        tracer = StageTracer()
        for _ in range(2):
            with tracer.span("epoch"):
                pass
        millis = stage_millis(tracer.drain())
        assert set(millis) == {"epoch"}
        assert millis["epoch"] >= 0.0


class TestJsonlSpanSink:
    def test_round_trips_through_load_spans(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = StageTracer()
        tracer.set_epoch(0)
        with tracer.span("epoch"):
            with tracer.span("simulate"):
                pass
        sink = JsonlSpanSink(path)
        sink.write(tracer.drain())
        sink.close()
        spans = load_spans(path)
        assert ["/".join(s["path"]) for s in spans] == ["epoch/simulate", "epoch"]
        assert all(s["epoch"] == 0 for s in spans)

    def test_empty_write_creates_no_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSpanSink(str(path))
        sink.write([])
        sink.close()
        assert not path.exists()


# --------------------------------------------------------------------------- #
# exposition
# --------------------------------------------------------------------------- #
class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(3)
        reg.gauge("g", "a gauge").set(1.5)
        text = prometheus_text(reg)
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 3" in text
        assert "g 1.5" in text

    def test_labeled_samples(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("part",)).labels(part="hh").inc()
        assert 'c_total{part="hh"} 1' in prometheus_text(reg)

    def test_histogram_exposition_is_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_ms", buckets=(1.0, 5.0))
        hist.observe(0.5)
        hist.observe(3.0)
        hist.observe(99.0)
        text = prometheus_text(reg)
        assert 'h_ms_bucket{le="1"} 1' in text
        assert 'h_ms_bucket{le="5"} 2' in text
        assert 'h_ms_bucket{le="+Inf"} 3' in text
        assert "h_ms_count 3" in text

    def test_snapshot_histogram_structure(self):
        reg = MetricsRegistry()
        reg.histogram("h_ms", buckets=(1.0,)).observe(0.5)
        (sample,) = snapshot(reg)
        assert sample["type"] == "histogram"
        assert sample["count"] == 1
        assert sample["buckets"][-1]["le"] == "+Inf"

    def test_write_snapshot_jsonl(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        path = tmp_path / "metrics.jsonl"
        write_snapshot(str(path), reg)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {
            "name": "c_total", "type": "counter", "labels": {}, "value": 1.0,
        }


class TestMetricsServer:
    def test_serves_metrics_json_and_healthz(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(2)
        server = MetricsServer(reg, port=0)
        try:
            assert server.port > 0
            text = urllib.request.urlopen(
                f"{server.url}/metrics", timeout=5).read().decode()
            assert "c_total 2" in text
            sample = json.loads(urllib.request.urlopen(
                f"{server.url}/metrics.json", timeout=5).read().decode())
            assert sample["name"] == "c_total"
            health = urllib.request.urlopen(
                f"{server.url}/healthz", timeout=5).read()
            assert health == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
        finally:
            server.close()

    def test_close_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        server.close()
        server.close()


# --------------------------------------------------------------------------- #
# report aggregation
# --------------------------------------------------------------------------- #
def _span(path, duration_ms, epoch=0):
    return {
        "name": path[-1], "path": list(path), "epoch": epoch,
        "start_ns": 0, "duration_ns": int(duration_ms * 1e6),
    }


class TestReport:
    def test_self_time_is_total_minus_children(self):
        spans = [
            _span(("epoch",), 10.0),
            _span(("epoch", "simulate"), 6.0),
            _span(("epoch", "analyze"), 3.0),
        ]
        nodes = {n["stage"]: n for n in aggregate_spans(spans)}
        assert nodes["epoch"]["total_ms"] == pytest.approx(10.0)
        assert nodes["epoch"]["self_ms"] == pytest.approx(1.0)
        assert nodes["epoch/simulate"]["self_ms"] == pytest.approx(6.0)

    def test_counts_and_means_accumulate_across_epochs(self):
        spans = [_span(("epoch",), 4.0, epoch=e) for e in range(3)]
        (node,) = aggregate_spans(spans)
        assert node["count"] == 3
        assert node["total_ms"] == pytest.approx(12.0)
        assert node["mean_ms"] == pytest.approx(4.0)
        assert node["pct"] == pytest.approx(100.0)

    def test_siblings_sorted_by_descending_total(self):
        spans = [
            _span(("epoch",), 10.0),
            _span(("epoch", "small"), 1.0),
            _span(("epoch", "big"), 8.0),
        ]
        stages = [n["stage"] for n in aggregate_spans(spans)]
        assert stages == ["epoch", "epoch/big", "epoch/small"]

    def test_missing_parent_synthesized_with_zero_self(self):
        spans = [_span(("epoch", "simulate", "merge"), 2.0)]
        nodes = {n["stage"]: n for n in aggregate_spans(spans)}
        assert nodes["epoch"]["count"] == 0
        assert nodes["epoch"]["self_ms"] == pytest.approx(0.0)
        assert nodes["epoch"]["total_ms"] == pytest.approx(2.0)

    def test_render_and_dict(self):
        spans = [_span(("epoch",), 5.0), _span(("epoch", "simulate"), 2.0)]
        nodes = aggregate_spans(spans)
        text = render_report(nodes)
        assert "stage" in text and "self ms" in text and "  simulate" in text
        payload = report_dict(nodes)
        assert payload["total_ms"] == pytest.approx(5.0)
        assert len(payload["stages"]) == 2

    def test_render_empty(self):
        assert render_report([]) == "(no spans)"


# --------------------------------------------------------------------------- #
# identity contract: traced/metered runs are bit-identical to plain ones
# --------------------------------------------------------------------------- #
def _run(seed, shards=None, observed=False, epochs=3, tmp_path=None):
    source = SyntheticSource.steady(
        num_flows=120, epochs=epochs, victim_ratio=0.1, loss_rate=0.1, seed=seed
    )
    sink = MemorySink()
    kwargs = {}
    if observed:
        kwargs = {
            "tracer": StageTracer(),
            "metrics": MetricsRegistry(),
            "span_sink": (
                JsonlSpanSink(str(tmp_path / f"s{seed}.jsonl"))
                if tmp_path is not None else None
            ),
        }
    engine = StreamingEngine(
        source, sinks=[sink], resources=RESOURCES, seed=seed,
        pipelined=True, shards=shards, **kwargs,
    )
    engine.run()
    return sink.records


class TestIdentity:
    @pytest.mark.parametrize("seed", [1, 9])
    def test_tracing_and_metrics_do_not_perturb_records(self, seed, tmp_path):
        plain = _run(seed)
        observed = _run(seed, observed=True, tmp_path=tmp_path)
        assert comparable_records(observed) == comparable_records(plain)
        # The traced run actually measured something extra.
        assert all("timing" in record for record in observed)
        assert all("timing" not in record for record in plain)
        assert all("timing" not in comparable(r) for r in observed)

    @pytest.mark.parametrize("shards", [1, 4])
    def test_sharded_traced_matches_serial_untraced(self, shards, tmp_path):
        plain = _run(5)
        observed = _run(5, shards=shards, observed=True, tmp_path=tmp_path)
        assert comparable_records(observed) == comparable_records(plain)
        spans = load_spans(str(tmp_path / "s5.jsonl"))
        shard_spans = [s for s in spans if s.get("shard") is not None]
        assert {s["shard"] for s in shard_spans} == set(range(shards))
        assert any(
            s["path"] == ["epoch", "simulate", "classify_encode"]
            for s in shard_spans
        )

    def test_timing_subdict_covers_pipeline_stages(self, tmp_path):
        records = _run(2, observed=True, tmp_path=tmp_path)
        timing = records[-1]["timing"]
        for stage in ("epoch", "epoch/simulate", "epoch/analyze",
                      "epoch/analyze/decode", "epoch/analyze/mrac_em"):
            assert stage in timing
            assert timing[stage] >= 0.0

    def test_traced_checkpoints_match_untraced(self, tmp_path):
        from repro.service import TelemetryService, read_checkpoint

        states = []
        for observed in (False, True):
            source = SyntheticSource.steady(
                num_flows=100, epochs=3, victim_ratio=0.1, loss_rate=0.1, seed=4
            )
            kwargs = (
                {"tracer": StageTracer(), "metrics": MetricsRegistry()}
                if observed else {}
            )
            engine = StreamingEngine(
                source, resources=RESOURCES, seed=4, pipelined=False, **kwargs
            )
            path = str(tmp_path / f"ck{int(observed)}.rtck")
            service = TelemetryService(engine, checkpoint_path=path)
            service.run()
            states.append(read_checkpoint(path))
        plain, observed_state = states
        assert comparable_checkpoint(observed_state) == comparable_checkpoint(plain)
        # written_at is the wall-clock annotation the comparison strips.
        assert "written_at" in plain["meta"]

    def test_shard_span_histograms_merge_linearly(self, tmp_path):
        """Histogram merge linearity over real shard-shipped span durations."""
        _run(6, shards=4, observed=True, tmp_path=tmp_path)
        spans = [
            s for s in load_spans(str(tmp_path / "s6.jsonl"))
            if s.get("shard") is not None
        ]
        assert spans
        reg = MetricsRegistry()
        combined = reg.histogram("h_all")
        per_shard = {
            shard: reg.histogram(f"h_{shard}")
            for shard in {s["shard"] for s in spans}
        }
        for span in spans:
            ms = span["duration_ns"] / 1e6
            combined.observe(ms)
            per_shard[span["shard"]].observe(ms)
        shards = sorted(per_shard)
        merged = per_shard[shards[0]]
        for shard in shards[1:]:
            merged.merge(per_shard[shard]._unlabeled())
        assert merged._unlabeled().bucket_counts == \
            combined._unlabeled().bucket_counts
        assert merged.count == combined.count
        assert merged.sum == pytest.approx(combined.sum)


# --------------------------------------------------------------------------- #
# engine and service integration
# --------------------------------------------------------------------------- #
class TestEngineIntegration:
    def test_engine_populates_registry(self):
        reg = MetricsRegistry()
        source = SyntheticSource.steady(
            num_flows=100, epochs=2, victim_ratio=0.1, loss_rate=0.1, seed=1
        )
        make_engine(source, metrics=reg).run()
        assert reg.get("repro_epochs_total").value == 2
        assert reg.get("repro_flows_total").value == 200
        assert reg.get("repro_epoch_wall_ms").count == 2
        assert reg.get("repro_encoder_budget_bytes").value > 0

    def test_sharded_engine_counts_merge_bytes(self):
        reg = MetricsRegistry()
        source = SyntheticSource.steady(
            num_flows=100, epochs=2, victim_ratio=0.1, loss_rate=0.1, seed=1
        )
        make_engine(source, metrics=reg, shards=2).run()
        assert reg.get("repro_shard_merge_bytes_total").value > 0

    def test_timing_fields_constant_is_shared(self):
        from repro.stream.engine import TIMING_FIELDS as engine_fields

        assert engine_fields is TIMING_FIELDS
        assert "timing" in TIMING_FIELDS and "wall_ms" in TIMING_FIELDS

    def test_metrics_port_requires_registry(self):
        from repro.service import TelemetryService

        source = SyntheticSource.steady(num_flows=50, epochs=1, seed=1)
        engine = make_engine(source)
        with pytest.raises(ValueError):
            TelemetryService(engine, metrics_port=0)

    def test_service_serves_live_metrics_and_counts_alert_transitions(self):
        import threading

        from repro.service import AlertEngine, RollingF1Floor, TelemetryService

        reg = MetricsRegistry()
        source = SyntheticSource.steady(
            num_flows=100, epochs=4, victim_ratio=0.1, loss_rate=0.1, seed=2
        )
        engine = make_engine(source, metrics=reg)
        # An impossible floor so the rule fires on the first evaluated epoch.
        service = TelemetryService(
            engine,
            alert_engine=AlertEngine([RollingF1Floor(2.0)]),
            metrics_port=0,
        )
        scraped = {}

        def scrape():
            while service.metrics_server is None:
                pass
            url = f"{service.metrics_server.url}/metrics"
            scraped["text"] = urllib.request.urlopen(url, timeout=5).read().decode()

        thread = threading.Thread(target=scrape)
        thread.start()
        service.run()
        thread.join(timeout=10)
        assert "repro_epochs_total" in scraped["text"]
        assert service.metrics_server is None  # closed on shutdown
        transitions = reg.get("repro_alert_transitions_total")
        assert transitions.labels(rule="rolling_f1_floor", status="firing").value == 1


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestCli:
    def test_stream_spans_metrics_and_perf_report(self, capsys, tmp_path):
        spans_path = str(tmp_path / "spans.jsonl")
        metrics_path = str(tmp_path / "metrics.jsonl")
        assert main([
            "stream", "--epochs", "2", "--quiet", "--phases", "150:0.05:2",
            "--spans", spans_path, "--metrics", metrics_path,
        ]) == 0
        capsys.readouterr()
        names = {json.loads(line)["name"]
                 for line in open(metrics_path, encoding="utf-8")}
        assert "repro_epochs_total" in names and "repro_epoch_wall_ms" in names

        report_path = str(tmp_path / "report.json")
        assert main(["perf", "report", spans_path, "--json", report_path]) == 0
        out = capsys.readouterr().out
        assert "mrac_em" in out and "self ms" in out
        payload = json.loads(open(report_path, encoding="utf-8").read())
        assert payload["epochs"] == 2
        assert any(s["stage"] == "epoch/analyze/decode" for s in payload["stages"])

    def test_perf_report_missing_file_fails_cleanly(self, capsys):
        assert main(["perf", "report", "/nonexistent/spans.jsonl"]) == 2
        assert "cannot read spans" in capsys.readouterr().err

    def test_perf_report_empty_file_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["perf", "report", str(path)]) == 2
        assert "no spans" in capsys.readouterr().err

    def test_serve_metrics_snapshot(self, capsys, tmp_path):
        metrics_path = str(tmp_path / "metrics.jsonl")
        assert main([
            "serve", "--epochs", "2", "--quiet", "--phases", "150:0.05:2",
            "--metrics", metrics_path,
        ]) == 0
        capsys.readouterr()
        names = {json.loads(line)["name"]
                 for line in open(metrics_path, encoding="utf-8")}
        assert "repro_epochs_total" in names
