"""Tests for the Bloom filter, linear counting, and MRAC substrates."""

import random

import pytest

from repro.sketches.bloom import BloomFilter
from repro.sketches.linear_counting import (
    estimate_cardinality,
    linear_counting_estimate,
)
from repro.sketches.mrac import (
    counter_value_histogram,
    distribution_entropy,
    estimate_flow_size_distribution,
    merge_distributions,
)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(1000, 0.01, seed=1)
        keys = list(range(1000))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.for_capacity(1000, 0.01, seed=2)
        for key in range(1000):
            bloom.add(key)
        false_positives = sum(1 for key in range(10_000, 20_000) if key in bloom)
        assert false_positives < 500  # well below 5 %

    def test_add_if_new(self):
        bloom = BloomFilter.for_capacity(100, seed=3)
        assert bloom.add_if_new(42) is True
        assert bloom.add_if_new(42) is False

    def test_fill_ratio_and_clear(self):
        bloom = BloomFilter(1024, 4, seed=4)
        assert bloom.fill_ratio() == 0.0
        for key in range(100):
            bloom.add(key)
        assert bloom.fill_ratio() > 0.0
        bloom.clear()
        assert bloom.fill_ratio() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, 1.5)

    def test_memory_bytes(self):
        assert BloomFilter(800, 3).memory_bytes() == 100


class TestLinearCounting:
    def test_exact_when_sparse(self):
        assert linear_counting_estimate(1000, 1000) == 0.0

    def test_estimate_close_to_truth(self):
        rng = random.Random(5)
        slots = [0] * 4096
        distinct = 1500
        for key in range(distinct):
            slots[rng.randrange(4096)] += 1
        estimate = estimate_cardinality(slots)
        assert abs(estimate - distinct) / distinct < 0.1

    def test_saturated_returns_upper_bound(self):
        estimate = linear_counting_estimate(16, 0)
        assert estimate > 16

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_counting_estimate(0, 0)
        with pytest.raises(ValueError):
            linear_counting_estimate(10, 11)


class TestMRAC:
    def test_histogram_skips_zero_and_saturated(self):
        histogram = counter_value_histogram([0, 1, 1, 2, 255], max_value=255)
        assert histogram == {1: 2, 2: 1}

    def test_distribution_recovers_sparse_counters(self):
        # With few collisions the distribution should be close to the truth.
        rng = random.Random(6)
        counters = [0] * 8192
        truth = {1: 600, 2: 250, 5: 100, 20: 30}
        for size, flows in truth.items():
            for _ in range(flows):
                counters[rng.randrange(8192)] += size
        estimate = estimate_flow_size_distribution(counters, iterations=5)
        for size, flows in truth.items():
            assert estimate.get(size, 0) == pytest.approx(flows, rel=0.35)

    def test_empty_input(self):
        assert estimate_flow_size_distribution([]) == {}
        assert estimate_flow_size_distribution([0, 0, 0]) == {}

    def test_merge_distributions(self):
        merged = merge_distributions([{1: 2.0, 3: 1.0}, {1: 1.0, 5: 4.0}])
        assert merged == {1: 3.0, 3: 1.0, 5: 4.0}

    def test_entropy_of_uniform_sizes(self):
        # All flows the same size: each flow contributes -size/N*log2(size/N)...
        # entropy of {1: N} equals log2(N).
        entropy = distribution_entropy({1: 16.0})
        assert entropy == pytest.approx(4.0)

    def test_entropy_empty(self):
        assert distribution_entropy({}) == 0.0
