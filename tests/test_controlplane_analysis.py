"""Tests for network-wide analysis: loss detection and the accumulation tasks."""

import pytest

from repro.controlplane.analysis import packet_loss_detection
from repro.controlplane.tasks import (
    build_views,
    cardinality_estimate,
    flow_size_estimate,
    heavy_change_detection,
    heavy_hitter_detection,
    network_cardinality,
    network_flow_size,
    network_heavy_hitters,
)
from repro.dataplane.config import SwitchResources
from repro.network.simulator import build_testbed_simulator
from repro.traffic.generator import generate_workload


def run_one_epoch(num_flows=400, victim_ratio=0.1, seed=1, scale=0.05):
    resources = SwitchResources.scaled(scale)
    simulator = build_testbed_simulator(resources=resources, seed=seed)
    trace = generate_workload(
        "DCTCP", num_flows=num_flows, victim_ratio=victim_ratio, loss_rate=0.05,
        num_hosts=simulator.topology.num_hosts, seed=seed,
    )
    truth = simulator.run_epoch(trace)
    groups = {node: switch.end_epoch() for node, switch in simulator.switches.items()}
    return groups, truth, trace


class TestPacketLossDetection:
    def test_detects_all_victims_when_healthy(self):
        groups, truth, _ = run_one_epoch(num_flows=300, victim_ratio=0.1, seed=2)
        report = packet_loss_detection(groups)
        assert report.analysis_completed
        assert report.all_losses() == truth.losses

    def test_no_false_positives_without_losses(self):
        groups, truth, _ = run_one_epoch(num_flows=300, victim_ratio=0.0, seed=3)
        report = packet_loss_detection(groups)
        assert report.analysis_completed
        assert report.all_losses() == {}

    def test_loss_counts_exact(self):
        groups, truth, _ = run_one_epoch(num_flows=200, victim_ratio=0.2, seed=4)
        report = packet_loss_detection(groups)
        for flow_id, lost in truth.losses.items():
            assert report.all_losses().get(flow_id) == lost

    def test_hh_decodes_present_for_every_switch(self):
        groups, _, _ = run_one_epoch(seed=5)
        report = packet_loss_detection(groups)
        assert set(report.hh_decodes) == set(groups)

    def test_overload_reports_failure_not_garbage(self):
        # Far more flows than the tiny switches can record: the HH decoding
        # must fail and the analysis must stop rather than report nonsense.
        groups, truth, _ = run_one_epoch(num_flows=4000, victim_ratio=0.2, seed=6, scale=0.02)
        report = packet_loss_detection(groups)
        assert not all(d.success for d in report.hh_decodes.values())
        assert not report.analysis_completed
        assert report.all_losses() == {}


class TestAccumulationTasks:
    def test_flow_size_estimates_reasonable(self):
        groups, _, trace = run_one_epoch(num_flows=300, victim_ratio=0.0, seed=7)
        report = packet_loss_detection(groups)
        views = build_views(groups, {k: d.flowset for k, d in report.hh_decodes.items()})
        errors = []
        for flow in trace.flows[:100]:
            estimate = network_flow_size(views, flow.flow_id)
            errors.append(abs(estimate - flow.size) / flow.size)
        assert sum(errors) / len(errors) < 0.5

    def test_heavy_hitters_found(self):
        groups, _, trace = run_one_epoch(num_flows=300, victim_ratio=0.0, seed=8)
        report = packet_loss_detection(groups)
        views = build_views(groups, {k: d.flowset for k, d in report.hh_decodes.items()})
        threshold = 500
        truth_hh = {f.flow_id for f in trace.flows if f.size > threshold}
        reported = network_heavy_hitters(views, threshold)
        found = sum(1 for flow in truth_hh if flow in reported)
        assert not truth_hh or found / len(truth_hh) > 0.8

    def test_cardinality_close_to_truth(self):
        groups, _, trace = run_one_epoch(num_flows=400, victim_ratio=0.0, seed=9)
        report = packet_loss_detection(groups)
        views = build_views(groups, {k: d.flowset for k, d in report.hh_decodes.items()})
        estimate = network_cardinality(views)
        assert abs(estimate - len(trace)) / len(trace) < 0.15

    def test_per_switch_cardinality_positive(self):
        groups, _, _ = run_one_epoch(seed=10)
        report = packet_loss_detection(groups)
        views = build_views(groups, {k: d.flowset for k, d in report.hh_decodes.items()})
        for view in views.values():
            assert cardinality_estimate(view) >= 0

    def test_heavy_change_detection_between_epochs(self):
        resources = SwitchResources.scaled(0.05)
        simulator = build_testbed_simulator(resources=resources, seed=11)
        hosts = simulator.topology.num_hosts
        first = generate_workload("DCTCP", num_flows=200, num_hosts=hosts, seed=11)
        simulator.run_epoch(first)
        groups1 = {node: s.end_epoch() for node, s in simulator.switches.items()}
        report1 = packet_loss_detection(groups1)
        views1 = build_views(groups1, {k: d.flowset for k, d in report1.hh_decodes.items()})

        for switch in simulator.switches.values():
            switch.begin_epoch()
        second = generate_workload("DCTCP", num_flows=200, num_hosts=hosts, seed=12)
        simulator.run_epoch(second)
        groups2 = {node: s.end_epoch() for node, s in simulator.switches.items()}
        report2 = packet_loss_detection(groups2)
        views2 = build_views(groups2, {k: d.flowset for k, d in report2.hh_decodes.items()})

        changes = {}
        for key in views1:
            changes.update(heavy_change_detection(views1[key], views2[key], threshold=400))
        # The two epochs have disjoint flows, so every large flow is a change.
        big_flows = [f for f in first.flows + second.flows if f.size > 800]
        found = sum(1 for f in big_flows if f.flow_id in changes)
        assert not big_flows or found / len(big_flows) > 0.7

    def test_flow_size_estimate_uses_hh_flowset(self):
        groups, _, _ = run_one_epoch(seed=13)
        report = packet_loss_detection(groups)
        views = build_views(groups, {k: d.flowset for k, d in report.hh_decodes.items()})
        for view in views.values():
            for flow_id, size in list(view.hh_flowset.items())[:5]:
                assert flow_size_estimate(view, flow_id) == view.threshold_high + size

    def test_heavy_hitter_detection_respects_threshold(self):
        groups, _, _ = run_one_epoch(seed=14)
        report = packet_loss_detection(groups)
        views = build_views(groups, {k: d.flowset for k, d in report.hh_decodes.items()})
        for view in views.values():
            for flow_id, estimate in heavy_hitter_detection(view, 100).items():
                assert estimate > 100
