"""Tests for the FlowRadar and LossRadar packet-loss baselines."""

import random

import pytest

from repro.sketches.flowradar import FlowRadar, flowradar_loss_detection
from repro.sketches.lossradar import LossRadar, lossradar_loss_detection


def make_flows(count, seed=0, max_size=20):
    rng = random.Random(seed)
    flows = {}
    while len(flows) < count:
        flows[rng.randrange(1, 1 << 32)] = rng.randrange(1, max_size)
    return flows


class TestFlowRadar:
    def test_roundtrip(self):
        flows = make_flows(200, seed=1)
        radar = FlowRadar(num_cells=400, seed=1)
        for flow_id, size in flows.items():
            radar.insert(flow_id, size)
        result = radar.decode()
        assert result.success
        assert result.flows == flows

    def test_repeated_insertions_single_flow_entry(self):
        radar = FlowRadar(num_cells=64, seed=2)
        radar.insert(10, 3)
        radar.insert(10, 4)
        assert radar.decode().flows == {10: 7}

    def test_undersized_fails(self):
        flows = make_flows(500, seed=3)
        radar = FlowRadar(num_cells=100, seed=3)
        for flow_id, size in flows.items():
            radar.insert(flow_id, size)
        assert not radar.decode().success

    def test_loss_detection(self):
        flows = make_flows(150, seed=4)
        upstream = FlowRadar(300, seed=4)
        downstream = FlowRadar(300, seed=4)
        losses = {}
        rng = random.Random(4)
        for flow_id, size in flows.items():
            upstream.insert(flow_id, size)
            lost = rng.randrange(0, 2)
            lost = min(lost, size - 1)
            if lost:
                losses[flow_id] = lost
            if size - lost > 0:
                downstream.insert(flow_id, size - lost)
        detected, success = flowradar_loss_detection(upstream, downstream)
        assert success
        assert detected == losses

    def test_memory_accounting(self):
        radar = FlowRadar(num_cells=1000, filter_bits=8000)
        assert radar.memory_bytes() == 1000 * 12 + 1000

    def test_for_memory_split(self):
        radar = FlowRadar.for_memory(120_000)
        assert radar.memory_bytes() <= 130_000
        assert radar.num_cells > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowRadar(0)
        radar = FlowRadar(8)
        with pytest.raises(ValueError):
            radar.insert(1, 0)


class TestLossRadar:
    def test_packet_identifier_roundtrip(self):
        identifier = LossRadar.packet_identifier(0xDEADBEEF, 513)
        assert LossRadar.split_identifier(identifier) == (0xDEADBEEF, 513)

    def test_delta_decodes_lost_packets(self):
        flows = make_flows(50, seed=5, max_size=30)
        upstream = LossRadar(2000, seed=5)
        downstream = LossRadar(2000, seed=5)
        losses = {}
        rng = random.Random(5)
        for flow_id, size in flows.items():
            lost_seqs = set(rng.sample(range(size), min(2, size)) if size > 2 else [])
            for seq in range(size):
                upstream.insert_packet(flow_id, seq)
                if seq not in lost_seqs:
                    downstream.insert_packet(flow_id, seq)
            if lost_seqs:
                losses[flow_id] = len(lost_seqs)
        detected, success = lossradar_loss_detection(upstream, downstream)
        assert success
        assert detected == losses

    def test_memory_scales_with_lost_packets_not_flows(self):
        # A small meter suffices when few packets are lost, however many flows.
        meter = LossRadar(64, seed=6)
        for flow_id in range(10):
            meter.insert_packet(flow_id, 0)
        assert meter.decode().success

    def test_subtract_requires_same_geometry(self):
        with pytest.raises(ValueError):
            LossRadar(16, seed=1).subtract(LossRadar(32, seed=1))

    def test_memory_bytes(self):
        assert LossRadar(100).memory_bytes() == 1000

    def test_insert_convenience(self):
        meter = LossRadar(128, seed=7)
        meter.insert(5, 3)  # three packets with sequences 0..2
        result = meter.decode()
        assert result.success
        assert result.flows == {5: 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            LossRadar(0)
