"""Tests for the zero-copy binary epoch store and trace-file round trips."""

import json
import struct

import numpy as np
import pytest

from repro.stream.sources import TraceFileSource, write_trace_file
from repro.traffic.flow import FlowRecord, Trace, TraceColumns
from repro.traffic.generator import generate_caida_like_trace, generate_workload
from repro.traffic.store import (
    MAGIC,
    BinaryTraceReader,
    TraceFormatError,
    inspect_binary_trace,
    is_binary_trace,
    write_binary_trace,
)


def _records(trace):
    return [flow.to_record() for flow in trace.flows]


def _assert_epochs_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert _records(a) == _records(b)


def _edge_case_epochs():
    """Epochs covering the dtype/value edges of the format."""
    wide = generate_workload(
        "DCTCP", num_flows=40, victim_ratio=0.2, seed=1, use_five_tuple=True
    )
    narrow_no_hosts = generate_caida_like_trace(
        num_flows=50, victim_flows=5, seed=2
    )  # 32-bit IDs, src/dst unset (-1 <-> None)
    zero_loss = generate_workload("VL2", num_flows=30, victim_ratio=0.0, seed=3)
    all_victim = generate_workload(
        "Hadoop", num_flows=25, victim_ratio=1.0, loss_rate=0.3, seed=4
    )
    return [wide, narrow_no_hosts, zero_loss, all_victim]


class TestBinaryRoundTrip:
    def test_round_trip_matches_jsonl(self, tmp_path):
        epochs = _edge_case_epochs()
        binary = str(tmp_path / "trace.rtbin")
        jsonl = str(tmp_path / "trace.jsonl")
        assert write_trace_file(binary, epochs) == len(epochs)
        assert write_trace_file(jsonl, epochs) == len(epochs)
        from_binary = list(TraceFileSource(binary).epochs())
        from_jsonl = list(TraceFileSource(jsonl).epochs())
        _assert_epochs_equal(from_binary, epochs)
        _assert_epochs_equal(from_binary, from_jsonl)

    def test_round_trip_preserves_empty_epochs(self, tmp_path):
        epochs = [
            generate_workload("DCTCP", num_flows=10, seed=1),
            Trace(columns=TraceColumns.empty()),
            generate_workload("DCTCP", num_flows=5, seed=2),
        ]
        path = str(tmp_path / "gaps.rtbin")
        assert write_binary_trace(path, epochs) == 3
        replayed = list(TraceFileSource(path).epochs())
        assert [len(t) for t in replayed] == [10, 0, 5]
        _assert_epochs_equal(replayed, epochs)

    def test_wide_ids_survive(self, tmp_path):
        trace = generate_workload("DCTCP", num_flows=20, seed=7, use_five_tuple=True)
        assert trace.columns().wide_ids  # 104-bit packed five-tuples
        path = str(tmp_path / "wide.rtbin")
        write_binary_trace(path, [trace])
        replayed = next(TraceFileSource(path).epochs())
        assert [f.flow_id for f in replayed.flows] == [f.flow_id for f in trace.flows]
        assert max(f.flow_id for f in replayed.flows) >= 1 << 64

    def test_replayed_traces_are_frozen_views(self, tmp_path):
        trace = generate_workload("DCTCP", num_flows=15, seed=3)
        path = str(tmp_path / "frozen.rtbin")
        write_binary_trace(path, [trace])
        replayed = next(TraceFileSource(path).epochs())
        assert replayed.frozen
        with pytest.raises((ValueError, RuntimeError)):
            replayed.columns().sizes[0] = 99
        # The explicit-mutation contract: copy first, then write.
        copied = replayed.columns().copy()
        copied.sizes[0] = 99
        assert copied.sizes[0] == 99

    def test_len_and_random_access(self, tmp_path):
        epochs = [generate_workload("DCTCP", num_flows=n, seed=n) for n in (5, 8, 3)]
        path = str(tmp_path / "multi.rtbin")
        write_binary_trace(path, epochs)
        assert len(TraceFileSource(path)) == 3
        with BinaryTraceReader(path) as reader:
            assert len(reader.read_epoch(1)) == 8
            assert len(reader.read_epoch(2)) == 3

    def test_inspect_summary(self, tmp_path):
        epochs = _edge_case_epochs()
        path = str(tmp_path / "inspect.rtbin")
        write_binary_trace(path, epochs)
        summary = inspect_binary_trace(path)
        assert summary["epochs"] == len(epochs)
        assert summary["flows"] == sum(len(t) for t in epochs)
        assert summary["packets"] == sum(t.num_packets() for t in epochs)
        assert summary["victims"] == sum(t.num_victims() for t in epochs)
        assert summary["wide_epochs"] >= 1
        assert "flow_id_lo" in summary["columns"]


class TestErrorPaths:
    def test_truncated_file_fails_fast(self, tmp_path):
        path = str(tmp_path / "trunc.rtbin")
        write_binary_trace(path, [generate_workload("DCTCP", num_flows=50, seed=1)])
        data = open(path, "rb").read()
        truncated = str(tmp_path / "cut.rtbin")
        with open(truncated, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            BinaryTraceReader(truncated)

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.rtbin")
        with open(path, "wb") as handle:
            handle.write(b"NOPE" + b"\0" * 60)
        with pytest.raises(TraceFormatError, match="magic"):
            BinaryTraceReader(path)
        assert not is_binary_trace(path)

    def test_unsupported_version(self, tmp_path):
        path = str(tmp_path / "vers.rtbin")
        with open(path, "wb") as handle:
            handle.write(struct.pack("<4sHHQQ", MAGIC, 99, 0, 64, 2))
            handle.write(b"\0" * 40)
            handle.write(b"{}")
        with pytest.raises(TraceFormatError, match="version"):
            BinaryTraceReader(path)

    def test_corrupt_manifest(self, tmp_path):
        path = str(tmp_path / "manifest.rtbin")
        blob = b"this is not json"
        with open(path, "wb") as handle:
            handle.write(struct.pack("<4sHHQQ", MAGIC, 1, 0, 64, len(blob)))
            handle.write(b"\0" * 40)
            handle.write(blob)
        with pytest.raises(TraceFormatError, match="manifest"):
            BinaryTraceReader(path)

    def test_incomplete_write_detected(self, tmp_path):
        # A crash before the header back-patch leaves offset == 0.
        path = str(tmp_path / "crash.rtbin")
        with open(path, "wb") as handle:
            handle.write(struct.pack("<4sHHQQ", MAGIC, 1, 0, 0, 0))
            handle.write(b"\0" * 200)
        with pytest.raises(TraceFormatError, match="manifest"):
            BinaryTraceReader(path)

    def test_tiny_file(self, tmp_path):
        path = str(tmp_path / "tiny.rtbin")
        with open(path, "wb") as handle:
            handle.write(b"RT")
        with pytest.raises(TraceFormatError):
            BinaryTraceReader(path)


class TestTextRoundTripRegression:
    """Column-backed rows must serialize to JSONL/CSV without numpy leakage."""

    @pytest.mark.parametrize("extension", ["jsonl", "csv"])
    def test_columnar_rows_round_trip(self, tmp_path, extension):
        # Row views over NumPy columns yield numpy-free scalars; before the
        # coercion fix json.dumps(np.int64(...)) raised TypeError and wide
        # (104-bit) IDs risked precision-lossy float round trips.
        epochs = [
            generate_workload("DCTCP", num_flows=30, victim_ratio=0.2, seed=9,
                              use_five_tuple=True),
            generate_caida_like_trace(num_flows=20, victim_flows=2, seed=10),
        ]
        path = str(tmp_path / f"round.{extension}")
        write_trace_file(path, epochs)
        replayed = list(TraceFileSource(path).epochs())
        _assert_epochs_equal(replayed, epochs)
        for flow in replayed[0].flows:
            assert isinstance(flow.flow_id, int)
            assert not isinstance(flow.flow_id, np.generic)

    def test_jsonl_values_are_plain_json_types(self, tmp_path):
        trace = generate_workload("DCTCP", num_flows=10, victim_ratio=0.5, seed=11)
        path = str(tmp_path / "plain.jsonl")
        write_trace_file(path, [trace])
        for line in open(path):
            row = json.loads(line)
            assert isinstance(row["flow_id"], int)
            assert isinstance(row["size"], int)
            assert isinstance(row["is_victim"], bool)

    def test_float_flow_id_rejected(self):
        from repro.stream.sources import _row_to_record

        with pytest.raises(ValueError, match="flow_id"):
            _row_to_record({"flow_id": 1.5, "size": 3})

    def test_wide_id_exact_through_text(self, tmp_path):
        wide_id = (1 << 100) + 12345  # loses precision through float64
        record = FlowRecord(flow_id=wide_id, size=7)
        path = str(tmp_path / "wide.jsonl")
        write_trace_file(path, [Trace(flows=[record])])
        replayed = next(TraceFileSource(path).epochs())
        assert replayed.flows[0].flow_id == wide_id
