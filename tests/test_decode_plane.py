"""Property tests for the vectorized decode plane.

The frontier-based NumPy decoders (FermatSketch, FlowRadar, LossRadar) must be
bit-identical to their scalar queue references: same recovered flow dict, same
``success``, same ``remaining`` — and, for FermatSketch, the same residual
bucket state — across random seeds, mixed insert/remove traces, subtracted
sketch pairs, overloaded sketches where decoding must fail, fingerprint and
fingerprintless configs, and every Fermat prime in use (61/89/127-bit Mersenne
plus a non-Mersenne prime that routes to the scalar reference).
"""

import random

import numpy as np
import pytest

from repro.controlplane.analysis import packet_loss_detection
from repro.sketches.fermat import (
    MERSENNE_PRIME_61,
    MERSENNE_PRIME_89,
    MERSENNE_PRIME_127,
    FermatSketch,
)
from repro.sketches.flowradar import FlowRadar
from repro.sketches.hashing import (
    modexp_mersenne_u64,
    modinv_batch,
    modmul_mersenne_u64,
)
from repro.sketches.lossradar import LossRadar


def make_flows(count, seed=0, max_size=50, id_bits=32):
    rng = random.Random(seed)
    flows = {}
    while len(flows) < count:
        flows[rng.randrange(1, 1 << id_bits)] = rng.randrange(1, max_size)
    return flows


def assert_identical_decodes(sketch):
    """Scalar and vectorized decode of ``sketch`` agree on results AND state."""
    scalar, vectorized = sketch.copy(), sketch.copy()
    a = scalar.decode_scalar()
    b = vectorized.decode_vectorized()
    assert a.flows == b.flows
    assert a.success == b.success
    assert a.remaining == b.remaining
    for i in range(sketch.num_arrays):
        assert (scalar._counts[i] == vectorized._counts[i]).all()
        assert all(
            int(x) == int(y)
            for x, y in zip(scalar._idsums[i], vectorized._idsums[i])
        )
    return a


# --------------------------------------------------------------------------- #
# limb arithmetic primitives
# --------------------------------------------------------------------------- #
class TestMersenneArithmetic:
    @pytest.mark.parametrize("e", [13, 31, 61])
    def test_modmul_matches_bigint(self, e):
        p = (1 << e) - 1
        rng = random.Random(e)
        a = np.array([rng.randrange(p) for _ in range(200)], dtype=np.uint64)
        b = np.array([rng.randrange(p) for _ in range(200)], dtype=np.uint64)
        got = modmul_mersenne_u64(a, b, e)
        expected = [(int(x) * int(y)) % p for x, y in zip(a, b)]
        assert got.tolist() == expected

    @pytest.mark.parametrize("e", [13, 31, 61])
    def test_modexp_matches_pow(self, e):
        p = (1 << e) - 1
        rng = random.Random(100 + e)
        base = np.array([rng.randrange(p) for _ in range(64)], dtype=np.uint64)
        got = modexp_mersenne_u64(base, p - 2, e)
        expected = [pow(int(x), p - 2, p) for x in base]
        assert got.tolist() == expected
        # Fermat inversion really inverts the non-zero values.
        for x, inv in zip(base.tolist(), got.tolist()):
            if x:
                assert (x * inv) % p == 1

    def test_modexp_edge_exponents(self):
        base = np.array([5, 7], dtype=np.uint64)
        assert modexp_mersenne_u64(base, 0, 61).tolist() == [1, 1]
        assert modexp_mersenne_u64(base, 1, 61).tolist() == [5, 7]

    @pytest.mark.parametrize("prime", [MERSENNE_PRIME_61, MERSENNE_PRIME_127])
    def test_modinv_batch(self, prime):
        rng = random.Random(7)
        values = [rng.randrange(1, prime) for _ in range(50)]
        inverses = modinv_batch(values, prime)
        assert all((v * i) % prime == 1 for v, i in zip(values, inverses))
        assert modinv_batch([], prime) == []
        with pytest.raises(ValueError):
            modinv_batch([prime], prime)


# --------------------------------------------------------------------------- #
# FermatSketch: vectorized vs scalar reference
# --------------------------------------------------------------------------- #
class TestFermatDecodePlane:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("fingerprint_bits", [0, 8])
    def test_roundtrip_identical(self, seed, fingerprint_bits):
        flows = make_flows(400, seed=seed)
        sketch = FermatSketch.for_flow_count(
            400, load_factor=0.6, seed=seed, fingerprint_bits=fingerprint_bits
        )
        sketch.insert_batch(list(flows), list(flows.values()))
        result = assert_identical_decodes(sketch)
        if result.success:
            assert result.flows == flows

    @pytest.mark.parametrize(
        "prime", [MERSENNE_PRIME_61, MERSENNE_PRIME_89, MERSENNE_PRIME_127]
    )
    def test_all_mersenne_primes(self, prime):
        flows = make_flows(200, seed=11)
        sketch = FermatSketch.for_flow_count(
            200, load_factor=0.6, seed=11, prime=prime, fingerprint_bits=8
        )
        sketch.insert_batch(list(flows), list(flows.values()))
        result = assert_identical_decodes(sketch)
        if result.success:
            assert result.flows == flows

    def test_small_mersenne_prime(self):
        # p = 2**13 - 1 forces multi-fold reductions on tiny residues.
        flows = make_flows(40, seed=13, max_size=20, id_bits=12)
        sketch = FermatSketch(80, prime=(1 << 13) - 1, seed=13)
        for flow_id, size in flows.items():
            sketch.insert(flow_id, size)
        result = assert_identical_decodes(sketch)
        if result.success:
            assert result.flows == flows

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_mixed_insert_remove(self, seed):
        flows = make_flows(300, seed=seed)
        sketch = FermatSketch.for_flow_count(300, load_factor=0.6, seed=seed)
        for flow_id, size in flows.items():
            sketch.insert(flow_id, size)
        removed = list(flows)[: len(flows) // 3]
        for flow_id in removed:
            sketch.remove(flow_id, flows.pop(flow_id))
        result = assert_identical_decodes(sketch)
        if result.success:
            assert result.flows == flows

    @pytest.mark.parametrize("fingerprint_bits", [0, 8])
    def test_subtracted_pair_identical(self, fingerprint_bits):
        flows = make_flows(250, seed=31)
        up = FermatSketch.for_flow_count(
            250, load_factor=0.5, seed=31, fingerprint_bits=fingerprint_bits
        )
        down = up.empty_like()
        losses = {}
        rng = random.Random(31)
        for flow_id, size in flows.items():
            up.insert(flow_id, size)
            lost = rng.randrange(0, min(4, size + 1))
            if lost:
                losses[flow_id] = lost
            if size - lost:
                down.insert(flow_id, size - lost)
        result = assert_identical_decodes(up - down)
        if result.success:
            assert result.positive_flows() == losses

    @pytest.mark.parametrize("seed", [41, 42, 43])
    @pytest.mark.parametrize("fingerprint_bits", [0, 8])
    def test_overloaded_decode_fails_identically(self, seed, fingerprint_bits):
        # 500 flows in 192 buckets: far above the d=3 peeling threshold.
        flows = make_flows(500, seed=seed)
        sketch = FermatSketch(64, seed=seed, fingerprint_bits=fingerprint_bits)
        sketch.insert_batch(list(flows), list(flows.values()))
        result = assert_identical_decodes(sketch)
        assert not result.success
        assert result.remaining > 0

    def test_non_mersenne_prime_routes_to_scalar(self):
        sketch = FermatSketch(16, prime=101, seed=1)
        sketch.insert(7, 3)
        sketch.insert(9, 2)
        assert_identical_decodes(sketch)
        assert sketch.decode().flows == {7: 3, 9: 2}

    def test_empty_sketch(self):
        result = FermatSketch(8).decode_vectorized()
        assert result.success and result.flows == {}

    def test_vectorized_is_default(self):
        flows = make_flows(100, seed=51)
        sketch = FermatSketch.for_flow_count(100, load_factor=0.5, seed=51)
        sketch.insert_batch(list(flows), list(flows.values()))
        assert sketch.decode_nondestructive().flows == flows
        assert sketch.decode().flows == flows
        assert sketch.is_empty()

    def test_encode_trace_matches_per_packet_insert(self):
        rng = random.Random(61)
        packets = [rng.randrange(1, 1 << 32) for _ in range(500)]
        batched = FermatSketch(256, seed=61, fingerprint_bits=8)
        batched.encode_trace(packets)
        scalar = batched.empty_like()
        for flow_id in packets:
            scalar.insert(flow_id)
        for i in range(batched.num_arrays):
            assert (batched._counts[i] == scalar._counts[i]).all()
            assert all(
                int(x) == int(y)
                for x, y in zip(batched._idsums[i], scalar._idsums[i])
            )

    def test_encode_trace_wide_ids(self):
        sketch = FermatSketch(32, prime=MERSENNE_PRIME_127)
        wide = (1 << 100) + 5
        sketch.encode_trace([wide, wide, 9])
        assert sketch.decode().flows == {wide: 2, 9: 1}


# --------------------------------------------------------------------------- #
# FlowRadar / LossRadar: vectorized vs scalar reference
# --------------------------------------------------------------------------- #
class TestFlowRadarDecodePlane:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_roundtrip_identical(self, seed):
        flows = make_flows(400, seed=seed, max_size=40)
        radar = FlowRadar(2000, seed=seed)
        for flow_id, size in flows.items():
            radar.insert(flow_id, size)
        a, b = radar.decode_scalar(), radar.decode()
        assert a.flows == b.flows
        assert (a.success, a.remaining) == (b.success, b.remaining)
        if a.success:
            assert a.flows == flows

    def test_overloaded_identical(self):
        flows = make_flows(200, seed=4)
        radar = FlowRadar(60, seed=4)
        for flow_id, size in flows.items():
            radar.insert(flow_id, size)
        a, b = radar.decode_scalar(), radar.decode()
        assert a.flows == b.flows
        assert (a.success, a.remaining) == (b.success, b.remaining)
        assert not a.success

    def test_decode_is_nondestructive(self):
        radar = FlowRadar(100, seed=5)
        radar.insert(42, 7)
        assert radar.decode().flows == {42: 7}
        assert radar.decode().flows == {42: 7}

    def test_wide_flow_id_rejected(self):
        radar = FlowRadar(100, seed=6)
        with pytest.raises(ValueError):
            radar.insert(1 << 64, 1)


class TestLossRadarDecodePlane:
    def test_insert_paths_bit_identical(self):
        flows = make_flows(300, seed=7, max_size=30)
        per_packet = LossRadar(4000, seed=7)
        batched_insert = LossRadar(4000, seed=7)
        batch = LossRadar(4000, seed=7)
        for flow_id, size in flows.items():
            for sequence in range(size):
                per_packet.insert_packet(flow_id, sequence)
            batched_insert.insert(flow_id, size)
        batch.insert_batch(list(flows), list(flows.values()))
        for other in (batched_insert, batch):
            assert (per_packet._count == other._count).all()
            assert (per_packet._xorsum == other._xorsum).all()

    @pytest.mark.parametrize("seed", [8, 9])
    def test_subtracted_pair_identical(self, seed):
        flows = make_flows(300, seed=seed, max_size=30)
        rng = random.Random(seed)
        up = LossRadar(3000, seed=seed)
        down = LossRadar(3000, seed=seed)
        losses = {}
        for flow_id, size in flows.items():
            up.insert(flow_id, size)
            lost = rng.randrange(0, min(4, size + 1))
            if lost:
                losses[flow_id] = lost
            kept = sorted(rng.sample(range(size), size - lost))
            if kept:
                down.insert_packets([flow_id] * len(kept), kept)
        delta = up - down
        a, b = delta.decode_scalar(), delta.decode()
        assert a.flows == b.flows
        assert (a.success, a.remaining) == (b.success, b.remaining)
        if a.success:
            assert a.flows == losses

    def test_overloaded_identical(self):
        meter = LossRadar(90, seed=10)
        meter.insert_batch(list(make_flows(80, seed=10)), [5] * 80)
        a, b = meter.decode_scalar(), meter.decode()
        assert a.flows == b.flows
        assert (a.success, a.remaining) == (b.success, b.remaining)
        assert not a.success

    def test_wide_flow_id_rejected(self):
        meter = LossRadar(100, seed=11)
        with pytest.raises(ValueError):
            meter.insert(1 << 48, 1)
        with pytest.raises(ValueError):
            meter.insert_packets([1 << 48], [0])

    def test_sequence_wrap_matches_scalar(self):
        # Counts past 2**16 wrap the 16-bit sequence field; the vectorized
        # insert paths must reproduce packet_identifier's wrap exactly.
        count = (1 << 16) + 300
        vector_insert = LossRadar(512, seed=12)
        vector_insert.insert(777, count)
        batch = LossRadar(512, seed=12)
        batch.insert_batch([777], [count])
        scalar = LossRadar(512, seed=12)
        for sequence in range(count):
            scalar.insert_packet(777, sequence)
        for other in (vector_insert, batch):
            assert (scalar._count == other._count).all()
            assert (scalar._xorsum == other._xorsum).all()


# --------------------------------------------------------------------------- #
# control-plane analysis: destructive fast path
# --------------------------------------------------------------------------- #
def _collect_groups(seed=3, num_flows=300):
    from repro.dataplane.config import SwitchResources
    from repro.network.simulator import build_testbed_simulator
    from repro.traffic.generator import generate_workload

    simulator = build_testbed_simulator(
        resources=SwitchResources.scaled(0.05), seed=seed
    )
    trace = generate_workload(
        "DCTCP",
        num_flows=num_flows,
        victim_ratio=0.1,
        loss_rate=0.05,
        num_hosts=simulator.topology.num_hosts,
        seed=seed,
    )
    truth = simulator.run_epoch(trace)
    groups = {node: switch.end_epoch() for node, switch in simulator.switches.items()}
    return groups, truth


class TestDestructiveAnalysis:
    def test_destructive_report_identical(self):
        groups_a, truth = _collect_groups()
        groups_b, _ = _collect_groups()
        copied = packet_loss_detection(groups_a, destructive=False)
        in_place = packet_loss_detection(groups_b, destructive=True)
        assert copied.all_losses() == in_place.all_losses()
        assert copied.heavy_losses == in_place.heavy_losses
        assert copied.light_losses == in_place.light_losses
        assert copied.analysis_completed == in_place.analysis_completed
        assert copied.hl_decode_success == in_place.hl_decode_success
        assert {k: d.flowset for k, d in copied.hh_decodes.items()} == {
            k: d.flowset for k, d in in_place.hh_decodes.items()
        }
        assert copied.all_losses() == truth.losses

    def test_nondestructive_leaves_hh_encoders_intact(self):
        groups, _ = _collect_groups()
        packet_loss_detection(groups, destructive=False)
        # A second pass over the same groups must reproduce the same result.
        again = packet_loss_detection(groups, destructive=False)
        assert again.analysis_completed

    def test_decode_ms_reported(self):
        groups, _ = _collect_groups()
        report = packet_loss_detection(groups)
        assert report.decode_ms > 0.0


class TestStreamDecodeTelemetry:
    def test_epoch_records_carry_decode_ms(self):
        from repro.stream import MemorySink, Phase, StreamingEngine, SyntheticSource
        from repro.dataplane.config import SwitchResources

        sink = MemorySink()
        engine = StreamingEngine(
            SyntheticSource(phases=(Phase(epochs=2, num_flows=150),), seed=5),
            sinks=[sink],
            resources=SwitchResources.scaled(0.05),
            seed=5,
        )
        engine.run()
        assert len(sink.records) == 2
        for record in sink.records:
            assert record["decode_ms"] >= 0.0
            assert record["decode_ms"] <= record["wall_ms"]
