"""Smoke tests for the top-level public API."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_sketch_exports(self):
        from repro import sketches

        for name in sketches.__all__:
            assert hasattr(sketches, name), name

    def test_controlplane_exports(self):
        from repro import controlplane

        for name in controlplane.__all__:
            assert hasattr(controlplane, name), name

    def test_network_exports(self):
        from repro import network

        for name in network.__all__:
            assert hasattr(network, name), name

    def test_traffic_exports(self):
        from repro import traffic

        for name in traffic.__all__:
            assert hasattr(traffic, name), name

    def test_dataplane_exports(self):
        from repro import dataplane

        for name in dataplane.__all__:
            assert hasattr(dataplane, name), name

    def test_experiments_exports(self):
        from repro import experiments

        for name in experiments.__all__:
            assert hasattr(experiments, name), name

    def test_stream_exports(self):
        from repro import stream

        for name in stream.__all__:
            assert hasattr(stream, name), name
        assert hasattr(repro, "StreamingEngine")

    def test_quickstart_snippet(self):
        """The README quickstart must keep working."""
        from repro import FermatSketch

        upstream = FermatSketch.for_flow_count(1000, load_factor=0.7)
        downstream = upstream.empty_like()
        upstream.insert(42, 10)
        downstream.insert(42, 8)
        assert (upstream - downstream).decode().flows == {42: 2}
