"""Property tests: the vectorized NumPy backend is bit-identical to the scalar path.

Every batch API (``hash_array``, ``insert_batch``, ``query_batch``, the batched
classifier, and the batched epoch pipeline) must produce exactly the same
state and results as the scalar reference loops, under random seeds, key
widths up to 127 bits, and both Mersenne primes used in the repository.
"""

import random

import numpy as np
import pytest

from repro.core.tower_fermat import TowerFermat
from repro.dataplane.classifier import FlowClassifier
from repro.dataplane.config import EncoderLayout, MonitoringConfig, SwitchResources
from repro.network.simulator import _hypergeometric, distribute_losses
from repro.dataplane.hierarchy import FlowHierarchy
from repro.sketches.cm import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.fermat import (
    MERSENNE_PRIME_61,
    MERSENNE_PRIME_127,
    FermatSketch,
)
from repro.sketches.hashing import HashFamily, KeyArray, PairwiseHash
from repro.sketches.tower import TowerSketch


def random_flows(seed, count=400, key_bits=32, max_size=300):
    rng = random.Random(seed)
    ids = [rng.randrange(1, 1 << key_bits) for _ in range(count)]
    sizes = [rng.randrange(1, max_size) for _ in range(count)]
    return ids, sizes


class TestHashArray:
    @pytest.mark.parametrize("key_bits", [8, 32, 63, 64, 89, 104, 127])
    @pytest.mark.parametrize("range_size", [2, 3, 100, 4096, 65536, 2500 // 3])
    def test_bit_identical_to_scalar(self, key_bits, range_size):
        rng = random.Random(key_bits * 1000 + range_size)
        family = HashFamily(seed=rng.randrange(1 << 30))
        h = family.draw(range_size)
        keys = [rng.randrange(0, 1 << key_bits) for _ in range(200)]
        keys += [0, 1, h.prime - 1, h.prime, h.prime + 1, (1 << key_bits) - 1]
        assert h.hash_array(keys).tolist() == [h(k) for k in keys]

    def test_accepts_numpy_arrays_and_keyarray(self):
        h = HashFamily(seed=5).draw(1000)
        keys = np.arange(0, 5000, 7, dtype=np.int64)
        expected = [h(int(k)) for k in keys]
        assert h.hash_array(keys).tolist() == expected
        shared = KeyArray(keys)
        assert h.hash_array(shared).tolist() == expected
        h2 = h.with_range(17)
        assert h2.hash_array(shared).tolist() == [h2(int(k)) for k in keys]

    def test_empty_batch(self):
        h = HashFamily(seed=1).draw(10)
        assert h.hash_array([]).size == 0

    def test_rejects_negative_keys(self):
        h = HashFamily(seed=1).draw(10)
        with pytest.raises(ValueError):
            h.hash_array([3, -1])

    def test_invalid_range_rejected_at_construction(self):
        # Regression: the range used to be validated on every call and the
        # error surfaced only at first use; now construction fails fast.
        with pytest.raises(ValueError):
            PairwiseHash(a=3, b=5, range_size=0)
        h = HashFamily(seed=0).draw(100)
        with pytest.raises(ValueError):
            h.with_range(-2)


class TestSketchBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tower_insert_query(self, seed):
        ids, sizes = random_flows(seed, key_bits=104, max_size=400)
        scalar = TowerSketch([(8, 512), (16, 256)], seed=seed)
        batched = TowerSketch([(8, 512), (16, 256)], seed=seed)
        for flow_id, size in zip(ids, sizes):
            scalar.insert(flow_id, size)
        batched.insert_batch(ids, sizes)
        for level in range(2):
            assert scalar.counter_array(level) == batched.counter_array(level)
        queries = ids[:50] + [999999999]
        assert batched.query_batch(queries).tolist() == [
            scalar.query(f) for f in queries
        ]

    @pytest.mark.parametrize("seed", [3, 4])
    def test_cm_insert_query(self, seed):
        ids, sizes = random_flows(seed)
        scalar = CountMinSketch(277, depth=3, seed=seed)
        batched = CountMinSketch(277, depth=3, seed=seed)
        for flow_id, size in zip(ids, sizes):
            scalar.insert(flow_id, size)
        batched.insert_batch(ids, sizes)
        assert (scalar._counters == batched._counters).all()
        assert batched.query_batch(ids[:40]).tolist() == [
            scalar.query(f) for f in ids[:40]
        ]

    @pytest.mark.parametrize("seed", [5, 6])
    def test_countsketch_insert(self, seed):
        ids, sizes = random_flows(seed)
        scalar = CountSketch(301, depth=3, seed=seed)
        batched = CountSketch(301, depth=3, seed=seed)
        for flow_id, size in zip(ids, sizes):
            scalar.insert(flow_id, size)
        batched.insert_batch(ids, sizes)
        assert (scalar._counters == batched._counters).all()
        for flow_id in ids[:30]:
            assert scalar.query(flow_id) == batched.query(flow_id)

    @pytest.mark.parametrize(
        "prime,key_bits,fingerprint_bits",
        [
            (MERSENNE_PRIME_61, 32, 0),
            (MERSENNE_PRIME_61, 32, 20),
            (MERSENNE_PRIME_127, 104, 20),
        ],
    )
    def test_fermat_insert_and_decode(self, prime, key_bits, fingerprint_bits):
        ids, sizes = random_flows(11, count=300, key_bits=key_bits)
        ids = list(dict.fromkeys(ids))
        sizes = sizes[: len(ids)]
        kwargs = dict(
            num_arrays=3, prime=prime, seed=9, fingerprint_bits=fingerprint_bits
        )
        scalar = FermatSketch(220, **kwargs)
        batched = FermatSketch(220, **kwargs)
        for flow_id, size in zip(ids, sizes):
            scalar.insert(flow_id, size)
        batched.insert_batch(ids, sizes)
        for i in range(3):
            assert (scalar._counts[i] == batched._counts[i]).all()
            assert scalar._idsums[i].tolist() == batched._idsums[i].tolist()
        scalar_decode = scalar.decode_nondestructive()
        batched_decode = batched.decode_nondestructive()
        assert scalar_decode.flows == batched_decode.flows
        assert scalar_decode.success == batched_decode.success
        assert batched_decode.success
        assert batched_decode.flows == dict(zip(ids, sizes))

    def test_fermat_batch_respects_prime_bound(self):
        sketch = FermatSketch(64, prime=MERSENNE_PRIME_61, fingerprint_bits=0)
        with pytest.raises(ValueError):
            sketch.insert_batch([MERSENNE_PRIME_61 + 1], [1])

    @pytest.mark.parametrize("seed", [7, 8])
    def test_tower_fermat_insert(self, seed):
        ids, sizes = random_flows(seed, count=500, key_bits=32, max_size=600)
        scalar = TowerFermat([(8, 1024), (16, 512)], fermat_buckets=600,
                             threshold=50, seed=seed)
        batched = TowerFermat([(8, 1024), (16, 512)], fermat_buckets=600,
                              threshold=50, seed=seed)
        for flow_id, size in zip(ids, sizes):
            scalar.insert(flow_id, size)
        batched.insert_batch(ids, sizes)
        for level in range(2):
            assert scalar.tower.counter_array(level) == batched.tower.counter_array(level)
        assert scalar.flowset() == batched.flowset()
        for flow_id in ids[:50]:
            assert scalar.query(flow_id) == batched.query(flow_id)


class TestClassifierBatch:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_segments_identical(self, seed):
        resources = SwitchResources.scaled(0.05)
        config = MonitoringConfig(
            layout=resources.ill_layout,
            threshold_high=40,
            threshold_low=8,
            sample_rate=0.5,
        )
        ids, sizes = random_flows(seed, count=600, key_bits=32, max_size=120)
        scalar = FlowClassifier(resources, seed=seed)
        batched = FlowClassifier(resources, seed=seed)
        expected = [
            scalar.classify_flow_packets(flow_id, size, config)
            for flow_id, size in zip(ids, sizes)
        ]
        got = batched.classify_flows_batch(ids, sizes, config)
        assert got == expected
        for level in range(len(resources.classifier_levels)):
            assert scalar.tower.counter_array(level) == batched.tower.counter_array(level)


class TestClassifierSaturationAndGenericPaths:
    @pytest.mark.parametrize(
        "levels",
        [((4, 32), (6, 16)), ((4, 32),), ((4, 64), (6, 32), (8, 16))],
    )
    def test_saturation_heavy_batches_match_scalar(self, levels):
        # Tiny, narrow counters force constant saturation crossings, which
        # exercises the vectorized classifier's sequential fallback (2 levels)
        # and the generic non-2-level walk.
        resources = SwitchResources(
            upstream_buckets=48,
            downstream_buckets=36,
            classifier_levels=levels,
            min_hl_buckets=6,
            ill_layout=EncoderLayout(m_hh=12, m_hl=30, m_ll=6),
        )
        config = MonitoringConfig(
            layout=resources.ill_layout,
            threshold_high=20,
            threshold_low=5,
            sample_rate=0.5,
        )
        rng = random.Random(42)
        ids = [rng.randrange(1, 1 << 32) for _ in range(400)]
        sizes = [rng.randrange(1, 60) for _ in range(400)]
        scalar = FlowClassifier(resources, seed=9)
        batched = FlowClassifier(resources, seed=9)
        expected = [
            scalar.classify_flow_packets(flow_id, size, config)
            for flow_id, size in zip(ids, sizes)
        ]
        got = batched.classify_flows_batch(ids, sizes, config)
        assert got == expected
        for level in range(len(levels)):
            assert scalar.tower.counter_array(level) == batched.tower.counter_array(level)


class TestHypergeometricLosses:
    def test_total_delivered_preserved(self):
        rng = random.Random(0)
        for trial in range(300):
            num_segments = rng.randrange(1, 6)
            segments = [
                (FlowHierarchy.HL_CANDIDATE, rng.randrange(0, 200))
                for _ in range(num_segments)
            ]
            total = sum(c for _, c in segments)
            lost = rng.randrange(0, total + 3)
            delivered = distribute_losses(segments, lost, rng)
            assert len(delivered) == len(segments)
            assert sum(c for _, c in delivered) == total - min(lost, total)
            assert all(0 <= c_d <= c for (_, c_d), (_, c) in zip(delivered, segments))

    def test_hypergeometric_support(self):
        rng = random.Random(1)
        for _ in range(2000):
            population = rng.randrange(1, 500)
            successes = rng.randrange(0, population + 1)
            draws = rng.randrange(0, population + 1)
            k = _hypergeometric(rng, population, successes, draws)
            assert max(0, draws - (population - successes)) <= k <= min(draws, successes)

    def test_hypergeometric_mean(self):
        rng = random.Random(2)
        population, successes, draws = 100, 30, 40
        samples = [
            _hypergeometric(rng, population, successes, draws) for _ in range(4000)
        ]
        mean = sum(samples) / len(samples)
        expected = draws * successes / population
        assert abs(mean - expected) < 0.25
