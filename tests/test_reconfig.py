"""Tests for the attention-shifting reconfiguration engine."""

import pytest

from repro.controlplane.reconfig import (
    AttentionController,
    NetworkLevel,
    flows_at_or_above,
    threshold_for_target,
)
from repro.controlplane.state import MonitoringSnapshot
from repro.dataplane.config import SwitchResources


def make_resources():
    return SwitchResources.scaled(0.1)


def healthy_snapshot(resources, **overrides):
    config = resources.initial_config()
    snapshot = MonitoringSnapshot(config=config, num_ingress_switches=4)
    snapshot.total_flows_estimate = 400.0
    snapshot.per_switch_flows = {i: 100.0 for i in range(4)}
    snapshot.flow_size_distribution = {1: 200.0, 5: 100.0, 50: 80.0, 500: 20.0}
    snapshot.hh_candidates = {i: 100 for i in range(4)}
    snapshot.hh_decode_success = True
    snapshot.hl_decode_success = True
    snapshot.ll_decode_success = True
    snapshot.num_heavy_losses = 20.0
    snapshot.victim_count_estimate = 20.0
    for key, value in overrides.items():
        setattr(snapshot, key, value)
    return snapshot


class TestThresholdSelection:
    def test_flows_at_or_above(self):
        distribution = {1: 10.0, 5: 5.0, 50: 2.0}
        assert flows_at_or_above(distribution, 5) == 7.0
        assert flows_at_or_above(distribution, 100) == 0.0

    def test_threshold_for_target_basic(self):
        distribution = {1: 100.0, 10: 50.0, 100: 10.0}
        # Only 10 flows allowed -> the smallest threshold excluding the 50
        # size-10 flows is 11 (admitting exactly the 10 size-100 flows).
        assert threshold_for_target(distribution, 10) == 11
        # 60 flows allowed -> threshold 2 admits exactly the 60 flows of size >= 2.
        assert threshold_for_target(distribution, 60) == 2

    def test_threshold_when_everything_fits(self):
        distribution = {5: 10.0}
        assert threshold_for_target(distribution, 100) == 1

    def test_threshold_respects_bounds(self):
        distribution = {1: 100.0, 1000: 100.0}
        assert threshold_for_target(distribution, 1, minimum=2, maximum=500) == 500

    def test_empty_distribution(self):
        assert threshold_for_target({}, 10, minimum=3) == 3


class TestHealthyState:
    def test_stays_healthy_when_everything_decodes(self):
        resources = make_resources()
        controller = AttentionController(resources)
        decision = controller.reconfigure(healthy_snapshot(resources))
        assert decision.level is NetworkLevel.HEALTHY
        assert decision.config.threshold_low == 1
        assert decision.config.sample_rate == 1.0

    def test_hh_failure_raises_threshold_and_stops(self):
        resources = make_resources()
        controller = AttentionController(resources)
        snapshot = healthy_snapshot(resources, hh_decode_success=False)
        decision = controller.reconfigure(snapshot)
        assert decision.level is NetworkLevel.HEALTHY
        assert decision.config.threshold_high > snapshot.config.threshold_high
        assert decision.config.layout == snapshot.config.layout

    def test_hl_failure_expands_hl_encoder(self):
        resources = make_resources()
        controller = AttentionController(resources)
        snapshot = healthy_snapshot(
            resources, hl_decode_success=False, victim_count_estimate=300.0
        )
        decision = controller.reconfigure(snapshot)
        assert decision.level is NetworkLevel.HEALTHY
        assert decision.config.layout.m_hl > snapshot.config.layout.m_hl
        assert decision.config.layout.m_ll == 0

    def test_transition_to_ill_when_victims_exceed_capacity(self):
        resources = make_resources()
        controller = AttentionController(resources)
        too_many = resources.downstream_buckets * resources.num_arrays * 2.0
        snapshot = healthy_snapshot(
            resources, hl_decode_success=False, victim_count_estimate=too_many
        )
        decision = controller.reconfigure(snapshot)
        assert decision.level is NetworkLevel.ILL
        assert decision.transitioned
        assert decision.config.layout == resources.ill_layout
        assert decision.config.layout.m_ll > 0
        assert decision.config.threshold_low >= 2
        assert decision.config.sample_rate < 1.0
        assert controller.level is NetworkLevel.ILL

    def test_compression_when_underloaded(self):
        resources = make_resources()
        controller = AttentionController(resources)
        # Start from an inflated HL encoder and very few victims.
        from repro.dataplane.config import EncoderLayout, MonitoringConfig

        big_hl = MonitoringConfig(
            layout=EncoderLayout(
                m_hh=resources.upstream_buckets - resources.downstream_buckets,
                m_hl=resources.downstream_buckets,
                m_ll=0,
            )
        )
        snapshot = healthy_snapshot(resources, victim_count_estimate=5.0, num_heavy_losses=5.0)
        snapshot.config = big_hl
        decision = controller.reconfigure(snapshot)
        assert decision.config.layout.m_hl < resources.downstream_buckets
        assert decision.config.layout.m_hl >= resources.min_hl_buckets

    def test_forward_progress_guaranteed_on_repeated_failure(self):
        resources = make_resources()
        controller = AttentionController(resources)
        config = resources.initial_config()
        for _ in range(10):
            snapshot = healthy_snapshot(
                resources, hl_decode_success=False, victim_count_estimate=10.0
            )
            snapshot.config = config
            decision = controller.reconfigure(snapshot)
            if controller.level is NetworkLevel.ILL:
                break
            assert decision.config.layout.m_hl > config.layout.m_hl
            config = decision.config
        # Eventually the downstream capacity is exhausted and the state flips.
        assert config.layout.m_hl <= resources.downstream_buckets


class TestIllState:
    def ill_snapshot(self, resources, **overrides):
        from repro.dataplane.config import MonitoringConfig

        config = MonitoringConfig(
            layout=resources.ill_layout,
            threshold_high=200,
            threshold_low=50,
            sample_rate=0.2,
        )
        snapshot = MonitoringSnapshot(config=config, num_ingress_switches=4)
        snapshot.total_flows_estimate = 2000.0
        snapshot.per_switch_flows = {i: 500.0 for i in range(4)}
        snapshot.flow_size_distribution = {1: 1000.0, 10: 600.0, 100: 300.0, 1000: 100.0}
        snapshot.hh_candidates = {i: 80 for i in range(4)}
        snapshot.hh_decode_success = True
        snapshot.hl_decode_success = True
        snapshot.ll_decode_success = True
        snapshot.num_heavy_losses = 150.0
        snapshot.num_sampled_light_losses = 40.0
        snapshot.victim_count_estimate = 800.0
        snapshot.victim_size_distribution = {2: 500.0, 20: 200.0, 80: 70.0, 300: 30.0}
        for key, value in overrides.items():
            setattr(snapshot, key, value)
        return snapshot

    def make_ill_controller(self, resources):
        return AttentionController(resources, initial_level=NetworkLevel.ILL)

    def test_ll_failure_lowers_sample_rate(self):
        resources = make_resources()
        controller = self.make_ill_controller(resources)
        snapshot = self.ill_snapshot(resources, ll_decode_success=False,
                                     num_sampled_light_losses=500.0)
        decision = controller.reconfigure(snapshot)
        assert decision.level is NetworkLevel.ILL
        assert decision.config.sample_rate < snapshot.config.sample_rate

    def test_hl_failure_raises_t_low(self):
        resources = make_resources()
        controller = self.make_ill_controller(resources)
        snapshot = self.ill_snapshot(resources, hl_decode_success=False)
        decision = controller.reconfigure(snapshot)
        assert decision.config.threshold_low > snapshot.config.threshold_low
        assert decision.config.threshold_low <= decision.config.threshold_high

    def test_transition_back_to_healthy(self):
        resources = make_resources()
        controller = self.make_ill_controller(resources)
        snapshot = self.ill_snapshot(resources, victim_count_estimate=20.0)
        decision = controller.reconfigure(snapshot)
        assert decision.level is NetworkLevel.HEALTHY
        assert decision.transitioned
        assert decision.config.threshold_low == 1
        assert decision.config.sample_rate == 1.0
        assert decision.config.layout.m_ll == 0

    def test_stays_ill_when_victims_still_too_many(self):
        resources = make_resources()
        controller = self.make_ill_controller(resources)
        too_many = resources.downstream_buckets * resources.num_arrays * 3.0
        snapshot = self.ill_snapshot(resources, victim_count_estimate=too_many)
        decision = controller.reconfigure(snapshot)
        assert decision.level is NetworkLevel.ILL
        assert not decision.transitioned

    def test_hh_failure_raises_t_high(self):
        resources = make_resources()
        controller = self.make_ill_controller(resources)
        snapshot = self.ill_snapshot(resources, hh_decode_success=False)
        decision = controller.reconfigure(snapshot)
        assert decision.config.threshold_high > snapshot.config.threshold_high

    def test_thresholds_remain_ordered(self):
        resources = make_resources()
        controller = self.make_ill_controller(resources)
        for overrides in (
            {},
            {"hl_decode_success": False},
            {"ll_decode_success": False},
            {"hh_decode_success": False},
            {"victim_count_estimate": 10_000.0},
        ):
            controller.level = NetworkLevel.ILL
            decision = controller.reconfigure(self.ill_snapshot(resources, **overrides))
            assert decision.config.threshold_low <= decision.config.threshold_high


class TestControllerValidation:
    def test_load_band_validation(self):
        with pytest.raises(ValueError):
            AttentionController(make_resources(), target_load=0.5, low_load=0.6)

    def test_decision_describe(self):
        resources = make_resources()
        controller = AttentionController(resources)
        decision = controller.reconfigure(healthy_snapshot(resources))
        assert "healthy" in decision.describe()
