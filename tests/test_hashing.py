"""Tests for the pairwise-independent hash family and key packing."""

import pytest

from repro.sketches.hashing import HashFamily, PairwiseHash, fold_key, unfold_key


class TestHashFamily:
    def test_draw_range(self):
        family = HashFamily(seed=1)
        h = family.draw(100)
        for key in range(1000):
            assert 0 <= h(key) < 100

    def test_deterministic_for_seed(self):
        a = HashFamily(seed=7).draw_many(3, 50)
        b = HashFamily(seed=7).draw_many(3, 50)
        for ha, hb in zip(a, b):
            for key in (0, 1, 12345, 2**32 - 1):
                assert ha(key) == hb(key)

    def test_different_seeds_differ(self):
        a = HashFamily(seed=1).draw(1 << 20)
        b = HashFamily(seed=2).draw(1 << 20)
        collisions = sum(1 for key in range(200) if a(key) == b(key))
        assert collisions < 10

    def test_distribution_roughly_uniform(self):
        h = HashFamily(seed=3).draw(10)
        counts = [0] * 10
        for key in range(10000):
            counts[h(key)] += 1
        assert min(counts) > 500
        assert max(counts) < 1500

    def test_invalid_range(self):
        family = HashFamily(seed=0)
        with pytest.raises(ValueError):
            family.draw(0)

    def test_invalid_prime(self):
        with pytest.raises(ValueError):
            HashFamily(seed=0, prime=1)

    def test_draw_many_count(self):
        family = HashFamily(seed=0)
        assert len(family.draw_many(5, 8)) == 5
        with pytest.raises(ValueError):
            family.draw_many(-1, 8)

    def test_with_range(self):
        h = HashFamily(seed=0).draw(100)
        h2 = h.with_range(10)
        assert isinstance(h2, PairwiseHash)
        assert 0 <= h2(12345) < 10

    def test_zero_range_rejected_at_construction(self):
        # The range is validated when the hash is built (construction or
        # with_range), not on every call in the data-plane hot path.
        with pytest.raises(ValueError):
            PairwiseHash(a=3, b=5, range_size=0)
        with pytest.raises(ValueError):
            HashFamily(seed=0).draw(100).with_range(0)


class TestKeyPacking:
    def test_roundtrip(self):
        widths = (32, 32, 16, 16, 8)
        parts = (0x0A000001, 0x0A000002, 1234, 80, 6)
        key = fold_key(parts, widths)
        assert unfold_key(key, widths) == parts

    def test_fold_rejects_overflow(self):
        with pytest.raises(ValueError):
            fold_key((256,), (8,))

    def test_fold_rejects_negative(self):
        with pytest.raises(ValueError):
            fold_key((-1,), (8,))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fold_key((1, 2), (8,))

    def test_unfold_rejects_extra_bits(self):
        with pytest.raises(ValueError):
            unfold_key(1 << 20, (8, 8))

    def test_zero_key(self):
        widths = (32, 32, 16, 16, 8)
        assert unfold_key(fold_key((0, 0, 0, 0, 0), widths), widths) == (0, 0, 0, 0, 0)
