"""Tests for repro.service: checkpoints, alerts, state diffs, the service."""

import json
import os
import signal
import struct
import subprocess
import sys

import pytest

from repro.dataplane.config import SwitchResources
from repro.service import (
    Alert,
    AlertEngine,
    CallbackAlertSink,
    CheckpointError,
    DecodeFailureStreak,
    EpochLatencySlo,
    JsonlAlertSink,
    MemoryAlertSink,
    NetworkStateError,
    RollingAreCeiling,
    RollingF1Floor,
    StateDiff,
    TelemetryService,
    compile_state_diff,
    compile_state_diffs,
    inspect_checkpoint,
    parse_device,
    read_checkpoint,
    read_state_diffs,
    synthesize_churn_diffs,
    write_checkpoint,
    write_state_diffs,
)
from repro.stream import (
    CsvSink,
    EpochSink,
    FlowBurstEvent,
    JsonlSink,
    LinkFailureEvent,
    LinkRecoveryEvent,
    MemorySink,
    StreamingEngine,
    SyntheticSource,
    comparable,
)
from repro.stream.events import (
    LinkFailureEvent as Failure,
    LinkRecoveryEvent as Recovery,
    LossRateShiftEvent,
)

RESOURCES = SwitchResources.scaled(0.05)

#: A fault schedule whose failure window and burst countdown straddle the
#: interrupt epochs used below, so checkpoints land mid-fault-schedule.
FAULTS = (
    LinkFailureEvent(
        epoch=2, endpoint_a=("edge", 0), endpoint_b=("host", 0), loss_rate=0.6
    ),
    FlowBurstEvent(epoch=3, extra_flows=150, duration=3, victim_ratio=0.2),
    LinkRecoveryEvent(epoch=6, endpoint_a=("edge", 0), endpoint_b=("host", 0)),
)


def make_engine(seed, sinks=(), epochs=8, shards=None, events=FAULTS, flows=150):
    source = SyntheticSource.steady(
        num_flows=flows, epochs=epochs, victim_ratio=0.1, seed=seed
    )
    return StreamingEngine(
        source,
        events=events,
        sinks=sinks,
        resources=RESOURCES,
        seed=seed,
        pipelined=True,
        rolling_window=4,
        shards=shards,
    )


# --------------------------------------------------------------------------- #
# checkpoint format
# --------------------------------------------------------------------------- #
def sample_state():
    return {
        "meta": {"seed": 3, "shards": 0, "rolling_window": 8,
                 "heavy_hitter_threshold": 100,
                 "schedule_fingerprint": "ab" * 8, "source_epochs": 12},
        "engine": {
            "next_epoch": 4,
            "f1_window": [0.5, 1.0, 0.875],
            "are_window": [0.01, 0.02, 0.125],
            "f1_total": 2.375,
            "are_total": 0.155,
            "summary": {"epochs": 4, "flows": 100, "packets": 5000,
                        "lost_packets": 17, "final_level": "L1"},
        },
        "system": {
            "controller": {"rng": {"version": 3,
                                   "state": [2**64 - 1, 0, 12345] + [7] * 622,
                                   "gauss": None}},
            "simulator": {"epoch_counter": 4,
                          "rng": {"version": 3, "state": list(range(625)),
                                  "gauss": 0.25}},
        },
        "alerts": {"rolling_f1_floor": {"firing": True}},
        "sinks": [{"kind": "jsonl", "path": "out.jsonl", "offset": 812}],
    }


class TestCheckpointFormat:
    def test_round_trip_is_exact(self, tmp_path):
        path = str(tmp_path / "state.rtck")
        state = sample_state()
        write_checkpoint(path, state)
        assert read_checkpoint(path) == state

    def test_write_does_not_mutate_input(self, tmp_path):
        state = sample_state()
        frozen = json.loads(json.dumps(state))
        write_checkpoint(str(tmp_path / "s.rtck"), state)
        assert state == frozen

    def test_64_bit_rng_words_survive(self, tmp_path):
        path = str(tmp_path / "wide.rtck")
        state = sample_state()
        state["system"]["controller"]["rng"]["state"] = [2**64 - 1, 2**63, 1]
        write_checkpoint(path, state)
        restored = read_checkpoint(path)
        assert restored["system"]["controller"]["rng"]["state"] == [
            2**64 - 1, 2**63, 1
        ]
        assert all(
            isinstance(w, int)
            for w in restored["system"]["controller"]["rng"]["state"]
        )

    def test_atomic_no_temp_residue(self, tmp_path):
        path = str(tmp_path / "state.rtck")
        write_checkpoint(path, sample_state())
        write_checkpoint(path, sample_state())
        assert os.listdir(tmp_path) == ["state.rtck"]

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bad.rtck")
        write_checkpoint(path, sample_state())
        blob = bytearray(open(path, "rb").read())
        blob[:4] = b"NOPE"
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint(path)

    def test_future_version_rejected(self, tmp_path):
        path = str(tmp_path / "vnext.rtck")
        write_checkpoint(path, sample_state())
        blob = bytearray(open(path, "rb").read())
        struct.pack_into("<H", blob, 4, 99)
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "cut.rtck")
        write_checkpoint(path, sample_state())
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_inspect_summary(self, tmp_path):
        path = str(tmp_path / "state.rtck")
        write_checkpoint(path, sample_state())
        info = inspect_checkpoint(path)
        assert info["next_epoch"] == 4
        assert info["seed"] == 3
        assert info["alerts_firing"] == ["rolling_f1_floor"]
        assert info["sinks"][0]["path"] == "out.jsonl"


# --------------------------------------------------------------------------- #
# network-state diffs
# --------------------------------------------------------------------------- #
class TestStateDiffs:
    def test_parse_device(self):
        assert parse_device("edge0") == ("edge", 0)
        assert parse_device("host12") == ("host", 12)
        with pytest.raises(NetworkStateError):
            parse_device("spine3")

    def test_diff_validation(self):
        with pytest.raises(NetworkStateError, match="epoch"):
            StateDiff(-1, "edge0", "x")
        with pytest.raises(NetworkStateError, match="op"):
            StateDiff(0, "edge0", "x", op="merge")
        with pytest.raises(NetworkStateError, match="device"):
            StateDiff(0, "leaf9", "x")
        with pytest.raises(NetworkStateError, match="missing"):
            StateDiff.from_dict({"epoch": 1, "device": "edge0"})

    def test_oper_status_down_up(self):
        path = "interfaces/interface[name=to-host2]/state/oper-status"
        down = compile_state_diff(StateDiff(4, "edge1", path, "replace", "DOWN"))
        assert isinstance(down, Failure)
        assert (down.endpoint_a, down.endpoint_b) == (("edge", 1), ("host", 2))
        assert down.loss_rate == 1.0
        up = compile_state_diff(StateDiff(6, "edge1", path, "replace", "UP"))
        assert isinstance(up, Recovery)
        with pytest.raises(NetworkStateError, match="UP or DOWN"):
            compile_state_diff(StateDiff(4, "edge1", path, "replace", "FLAP"))

    def test_interface_loss_rate_gray_and_clear(self):
        path = "interfaces/interface[name=to-host0]/state/counters/loss-rate"
        gray = compile_state_diff(StateDiff(2, "edge0", path, "replace", 0.3))
        assert isinstance(gray, Failure) and gray.loss_rate == 0.3
        clear = compile_state_diff(StateDiff(5, "edge0", path, "replace", 0.0))
        assert isinstance(clear, Recovery)
        with pytest.raises(NetworkStateError, match="outside"):
            compile_state_diff(StateDiff(2, "edge0", path, "replace", 1.5))

    def test_ecmp_member_remove_add(self):
        path = (
            "network-instances/network-instance[name=fabric]/protocols/"
            "ecmp/members/member[name=to-host3]"
        )
        gone = compile_state_diff(StateDiff(3, "edge1", path, "remove"))
        assert isinstance(gone, Failure) and gone.endpoint_b == ("host", 3)
        back = compile_state_diff(StateDiff(7, "edge1", path, "add"))
        assert isinstance(back, Recovery)
        with pytest.raises(NetworkStateError, match="add/remove"):
            compile_state_diff(StateDiff(3, "edge1", path, "replace"))

    def test_fabric_loss_shift(self):
        path = "qos/interfaces/state/loss-rate"
        shift = compile_state_diff(StateDiff(8, "fabric", path, "replace", 0.2))
        assert isinstance(shift, LossRateShiftEvent) and shift.loss_rate == 0.2
        restore = compile_state_diff(StateDiff(12, "fabric", path, "remove"))
        assert isinstance(restore, LossRateShiftEvent)
        assert restore.loss_rate is None

    def test_unsupported_path(self):
        with pytest.raises(NetworkStateError, match="unsupported"):
            compile_state_diff(StateDiff(0, "edge0", "system/state/hostname"))

    def test_jsonl_round_trip_and_line_numbers(self, tmp_path):
        feed = str(tmp_path / "diffs.jsonl")
        diffs = synthesize_churn_diffs(epochs=12, period=4)
        assert write_state_diffs(feed, diffs) == len(diffs)
        assert read_state_diffs(feed) == diffs
        with open(feed, "a") as handle:
            handle.write("# comment\n\n{not json\n")
        with pytest.raises(NetworkStateError, match=rf"{len(diffs) + 3}"):
            read_state_diffs(feed)

    def test_synthesized_churn_is_deterministic_and_compiles(self):
        first = synthesize_churn_diffs(epochs=16, period=4)
        second = synthesize_churn_diffs(epochs=16, period=4)
        assert first == second
        schedule = compile_state_diffs(first)
        fired = [schedule.at(epoch) for epoch in range(16)]
        assert any(fired)
        paths = {diff.path.split("/")[0] for diff in first}
        assert {"interfaces", "network-instances", "qos"} <= paths


# --------------------------------------------------------------------------- #
# alerting
# --------------------------------------------------------------------------- #
def record_for(epoch, f1=1.0, are=0.0, decode_failures=0, wall_ms=1.0):
    return {"epoch": epoch, "rolling_f1": f1, "rolling_are": are,
            "decode_failures": decode_failures, "wall_ms": wall_ms}


class TestAlertEngine:
    def test_transitions_only(self):
        sink = MemoryAlertSink()
        engine = AlertEngine([RollingF1Floor(0.9)], sinks=[sink])
        assert engine.observe(record_for(0, f1=0.95)) == []
        fired = engine.observe(record_for(1, f1=0.5))
        assert [a.tag for a in fired] == ["rolling_f1_floor:firing"]
        assert engine.observe(record_for(2, f1=0.5)) == []  # still breached
        cleared = engine.observe(record_for(3, f1=0.95))
        assert [a.tag for a in cleared] == ["rolling_f1_floor:cleared"]
        assert [a.status for a in sink.alerts] == ["firing", "cleared"]
        assert engine.firing() == []

    def test_warmup_suppresses_early_epochs(self):
        engine = AlertEngine([RollingF1Floor(0.9, warmup=3)])
        assert engine.observe(record_for(0, f1=0.0)) == []
        assert engine.observe(record_for(3, f1=0.0)) != []

    def test_are_ceiling(self):
        engine = AlertEngine([RollingAreCeiling(0.1)])
        assert engine.observe(record_for(0, are=0.05)) == []
        assert [a.tag for a in engine.observe(record_for(1, are=0.2))] == [
            "rolling_are_ceiling:firing"
        ]

    def test_decode_failure_streak(self):
        engine = AlertEngine([DecodeFailureStreak(2)])
        assert engine.observe(record_for(0, decode_failures=1)) == []
        fired = engine.observe(record_for(1, decode_failures=2))
        assert [a.tag for a in fired] == ["decode_failure_streak:firing"]
        cleared = engine.observe(record_for(2, decode_failures=0))
        assert [a.tag for a in cleared] == ["decode_failure_streak:cleared"]

    def test_latency_slo_is_timing_only(self):
        engine = AlertEngine([EpochLatencySlo(10.0)])
        fired = engine.observe(record_for(0, wall_ms=50.0))
        assert [a.deterministic for a in fired] == [False]

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            AlertEngine([RollingF1Floor(0.9), RollingF1Floor(0.5)])

    def test_state_round_trip_preserves_firing_and_streaks(self):
        engine = AlertEngine([RollingF1Floor(0.9), DecodeFailureStreak(3)])
        engine.observe(record_for(0, f1=0.1, decode_failures=1))
        snapshot = engine.snapshot_state()
        resumed = AlertEngine([RollingF1Floor(0.9), DecodeFailureStreak(3)])
        resumed.restore_state(snapshot)
        assert resumed.firing() == ["rolling_f1_floor"]
        # The streak continues from the restored counter: 1 + 2 more = 3.
        resumed.observe(record_for(1, f1=0.1, decode_failures=1))
        fired = resumed.observe(record_for(2, f1=0.1, decode_failures=1))
        assert [a.tag for a in fired] == ["decode_failure_streak:firing"]

    def test_callback_and_jsonl_sinks(self, tmp_path):
        seen = []
        path = str(tmp_path / "alerts.jsonl")
        jsonl = JsonlAlertSink(path)
        engine = AlertEngine(
            [RollingF1Floor(0.9)], sinks=[CallbackAlertSink(seen.append), jsonl]
        )
        engine.observe(record_for(0, f1=0.1))
        engine.close()
        assert [a.tag for a in seen] == ["rolling_f1_floor:firing"]
        lines = [json.loads(l) for l in open(path)]
        assert lines == [seen[0].to_dict()]


# --------------------------------------------------------------------------- #
# crash-safe sinks
# --------------------------------------------------------------------------- #
RECORDS = [
    {"epoch": epoch, "flows": 10 * epoch, "f1": 1.0 - 0.1 * epoch}
    for epoch in range(4)
]


class TestCrashSafeSinks:
    def test_jsonl_truncate_discards_post_checkpoint_records(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSink(path)
        for record in RECORDS[:2]:
            sink.write(record)
        sink.sync()
        offset = sink.tell()
        sink.write(RECORDS[2])  # written but past the durable checkpoint
        sink.close()
        resumed = JsonlSink(path)
        resumed.truncate_to(offset)
        for record in RECORDS[2:]:
            resumed.write(record)
        resumed.close()
        assert [json.loads(l) for l in open(path)] == RECORDS

    def test_csv_resume_suppresses_header(self, tmp_path):
        path = str(tmp_path / "out.csv")
        sink = CsvSink(path)
        for record in RECORDS[:2]:
            sink.write(record)
        sink.sync()
        offset, fields = sink.tell(), sink.sink_state()["fieldnames"]
        sink.close()
        resumed = CsvSink(path)
        resumed.truncate_to(offset, fieldnames=fields)
        for record in RECORDS[2:]:
            resumed.write(record)
        resumed.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 1 + len(RECORDS)  # exactly one header
        assert lines[0] == "epoch,flows,f1"

    def test_truncate_missing_file(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "never.jsonl"))
        sink.truncate_to(0)  # fresh run: fine
        with pytest.raises(FileNotFoundError):
            JsonlSink(str(tmp_path / "gone.jsonl")).truncate_to(100)

    def test_truncate_shorter_file_rejected(self, tmp_path):
        path = str(tmp_path / "short.jsonl")
        sink = JsonlSink(path)
        sink.write(RECORDS[0])
        sink.close()
        size = os.path.getsize(path)
        with pytest.raises(ValueError, match="shorter"):
            JsonlSink(path).truncate_to(size + 50)


# --------------------------------------------------------------------------- #
# service: resume bit-identity
# --------------------------------------------------------------------------- #
def run_service(seed, tmp_path, *, stop_at=None, resume=False, epochs=8,
                shards=None, interval=2, tag=""):
    sink = MemorySink()
    alert_sink = MemoryAlertSink()
    engine = make_engine(seed, sinks=[sink], epochs=epochs, shards=shards)
    alerts = AlertEngine(
        [RollingF1Floor(0.9, warmup=1), DecodeFailureStreak(2)],
        sinks=[alert_sink],
    )
    service = TelemetryService(
        engine,
        alert_engine=alerts,
        checkpoint_path=str(tmp_path / f"svc{tag}.rtck"),
        checkpoint_interval=interval,
    )
    service.run(max_epochs=stop_at, resume=resume)
    return sink.records, alert_sink.alerts, engine


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_resume_is_bit_identical(seed, tmp_path):
    full, full_alerts, _ = run_service(seed, tmp_path, tag="full")
    part, part_alerts, _ = run_service(seed, tmp_path, stop_at=4)
    rest, rest_alerts, engine = run_service(seed, tmp_path, resume=True)
    assert [comparable(r) for r in part + rest] == [comparable(r) for r in full]
    assert part_alerts + rest_alerts == full_alerts
    # Wide five-tuple flow IDs really are in play (>64-bit checkpoint edge).
    trace = next(iter(engine.source))
    assert max(flow.flow_id for flow in trace.flows).bit_length() > 64


def test_resume_mid_fault_schedule_snapshot(tmp_path):
    # Epoch 4 sits inside the failure window (2..6) with the epoch-3 burst's
    # countdown still live; fast_forward must reconstruct both exactly.
    full, _, _ = run_service(21, tmp_path, tag="full")
    part, _, _ = run_service(21, tmp_path, stop_at=4)
    rest, _, _ = run_service(21, tmp_path, resume=True)
    assert [comparable(r) for r in part + rest] == [comparable(r) for r in full]


def test_resume_bit_identical_under_sharding(tmp_path):
    full, _, _ = run_service(31, tmp_path, tag="full")  # serial reference
    part, _, engine = run_service(31, tmp_path, stop_at=4, shards=4)
    assert engine.system.simulator.shard_pool is None  # released on close
    rest, _, _ = run_service(31, tmp_path, resume=True, shards=4)
    assert [comparable(r) for r in part + rest] == [comparable(r) for r in full]


def test_resume_final_system_state_matches(tmp_path):
    _, _, full_engine = run_service(41, tmp_path, tag="full")
    run_service(41, tmp_path, stop_at=3)
    _, _, resumed_engine = run_service(41, tmp_path, resume=True)
    assert resumed_engine.snapshot_system() == full_engine.snapshot_system()


def test_resume_rejects_mismatched_spec(tmp_path):
    run_service(51, tmp_path, stop_at=4)
    with pytest.raises(CheckpointError, match="different run"):
        run_service(52, tmp_path, resume=True, tag="")


def test_resume_with_file_sinks_is_concatenation(tmp_path):
    def run(stop_at=None, resume=False):
        jsonl = JsonlSink(str(tmp_path / "svc.jsonl"))
        engine = make_engine(61, sinks=[jsonl], epochs=6)
        TelemetryService(
            engine,
            checkpoint_path=str(tmp_path / "svc.rtck"),
            checkpoint_interval=2,
        ).run(max_epochs=stop_at, resume=resume)

    run(stop_at=3)
    run(resume=True)
    resumed = [comparable(json.loads(l)) for l in open(tmp_path / "svc.jsonl")]

    reference = MemorySink()
    make_engine(61, sinks=[reference], epochs=6).run()
    assert resumed == [comparable(r) for r in reference.records]
    assert [r["epoch"] for r in resumed] == list(range(6))


# --------------------------------------------------------------------------- #
# service: lifecycle
# --------------------------------------------------------------------------- #
class FailingSink(EpochSink):
    def __init__(self, fail_at):
        self.fail_at = fail_at
        self.closed = False

    def write(self, record):
        if record["epoch"] >= self.fail_at:
            raise RuntimeError("sink exploded")

    def close(self):
        self.closed = True


class StopSink(EpochSink):
    """Requests a service stop when a chosen epoch's record is written."""

    def __init__(self, stop_at):
        self.stop_at = stop_at
        self.service = None

    def write(self, record):
        if record["epoch"] == self.stop_at:
            self.service.request_stop()


class TestLifecycle:
    def test_engine_close_releases_pool_and_sinks_on_sink_error(self):
        failing, memory = FailingSink(2), MemorySink()
        engine = make_engine(71, sinks=[failing, memory], epochs=6, shards=2)
        with pytest.raises(RuntimeError, match="exploded"):
            engine.run()
        assert failing.closed
        assert engine.system.simulator.shard_pool is None

    def test_service_closes_sinks_on_interrupt(self, tmp_path):
        failing = FailingSink(3)
        engine = make_engine(72, sinks=[failing], epochs=6)
        service = TelemetryService(
            engine, checkpoint_path=str(tmp_path / "crash.rtck")
        )
        with pytest.raises(RuntimeError, match="exploded"):
            service.run()
        assert failing.closed
        # Epochs 0..2 were recorded and checkpointed before the crash.
        assert inspect_checkpoint(str(tmp_path / "crash.rtck"))["next_epoch"] == 3

    def test_request_stop_checkpoints_and_resumes(self, tmp_path):
        stop_sink, records = StopSink(2), MemorySink()
        engine = make_engine(73, sinks=[stop_sink, records], epochs=6)
        service = TelemetryService(
            engine, checkpoint_path=str(tmp_path / "stop.rtck")
        )
        stop_sink.service = service
        service.run()
        assert [r["epoch"] for r in records.records] == [0, 1, 2]

        rest = MemorySink()
        TelemetryService(
            make_engine(73, sinks=[rest], epochs=6),
            checkpoint_path=str(tmp_path / "stop.rtck"),
        ).run(resume=True)
        reference = MemorySink()
        make_engine(73, sinks=[reference], epochs=6).run()
        combined = records.records + rest.records
        assert [comparable(r) for r in combined] == [
            comparable(r) for r in reference.records
        ]

    def test_sigterm_triggers_graceful_stop(self, tmp_path):
        class KillSink(EpochSink):
            def write(self, record):
                if record["epoch"] == 1:
                    os.kill(os.getpid(), signal.SIGTERM)

        records = MemorySink()
        engine = make_engine(74, sinks=[KillSink(), records], epochs=6)
        service = TelemetryService(
            engine,
            checkpoint_path=str(tmp_path / "sig.rtck"),
            handle_signals=True,
        )
        service.run()
        assert [r["epoch"] for r in records.records] == [0, 1]
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
        assert inspect_checkpoint(str(tmp_path / "sig.rtck"))["next_epoch"] == 2

    def test_final_checkpoint_written_without_interval(self, tmp_path):
        engine = make_engine(75, sinks=[MemorySink()], epochs=4)
        TelemetryService(
            engine,
            checkpoint_path=str(tmp_path / "final.rtck"),
            checkpoint_interval=0,
        ).run()
        assert inspect_checkpoint(str(tmp_path / "final.rtck"))["next_epoch"] == 4


# --------------------------------------------------------------------------- #
# CLI: serve end to end
# --------------------------------------------------------------------------- #
def serve(tmp_path, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    base = [
        sys.executable, "-m", "repro.cli", "serve",
        "--seed", "9", "--phases", "200:0.1:6", "--quiet",
        "--checkpoint", str(tmp_path / "cli.rtck"),
        "--checkpoint-interval", "2",
        "--jsonl", str(tmp_path / "cli.jsonl"),
        "--alerts", str(tmp_path / "cli_alerts.jsonl"),
        "--alert-f1-floor", "0.9", "--alert-warmup", "1",
    ]
    return subprocess.run(
        base + list(extra), env=env, capture_output=True, text=True, timeout=120
    )


class TestServeCli:
    def test_kill_and_resume_record_stream_identity(self, tmp_path):
        assert serve(tmp_path, "--epochs", "3").returncode == 0
        assert serve(tmp_path, "--epochs", "6", "--resume").returncode == 0
        resumed = [comparable(json.loads(l)) for l in open(tmp_path / "cli.jsonl")]

        full_dir = tmp_path / "full"
        full_dir.mkdir()
        assert serve(full_dir, "--epochs", "6").returncode == 0
        full = [comparable(json.loads(l)) for l in open(full_dir / "cli.jsonl")]
        assert resumed == full
        assert len(full) == 6

    def test_inspect(self, tmp_path):
        assert serve(tmp_path, "--epochs", "2").returncode == 0
        result = serve(tmp_path, "--inspect")
        assert result.returncode == 0
        assert json.loads(result.stdout)["next_epoch"] == 2

    def test_resume_without_checkpoint_flag_fails(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(__file__)), "src"
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--resume"],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert "--resume needs --checkpoint" in result.stderr
