"""Tests for the fat-tree topology, ECMP routing, and the packet-level simulator."""

import random

import pytest

from repro.dataplane.config import SwitchResources
from repro.dataplane.hierarchy import FlowHierarchy
from repro.dataplane.switch import EdgeSwitch
from repro.network.routing import EcmpRouter
from repro.network.simulator import NetworkSimulator, build_testbed_simulator, distribute_losses
from repro.network.topology import FatTreeSpec, FatTreeTopology
from repro.traffic.flow import FlowRecord, Trace


class TestTopology:
    def test_testbed_geometry(self):
        topo = FatTreeTopology.testbed()
        # 2 pods of a k=4 fat-tree: 4 core + 4 agg + 4 edge switches, 8 hosts.
        assert len(topo.core_switches) == 4
        assert len(topo.agg_switches) == 4
        assert len(topo.edge_switches) == 4
        assert topo.num_hosts == 8
        assert topo.num_switches == 12

    def test_full_fat_tree_k4(self):
        topo = FatTreeTopology(FatTreeSpec(k=4))
        assert len(topo.edge_switches) == 8
        assert topo.num_hosts == 16

    def test_host_edge_mapping(self):
        topo = FatTreeTopology.testbed()
        for index in range(topo.num_hosts):
            edge = topo.edge_switch_of_host(index)
            assert edge in topo.edge_switches
            assert topo.host(index) in topo.hosts_of_edge(edge)

    def test_paths_exist_between_all_hosts(self):
        topo = FatTreeTopology.testbed()
        for src in range(topo.num_hosts):
            for dst in range(topo.num_hosts):
                paths = topo.candidate_paths(src, dst)
                assert len(paths) >= 1

    def test_inter_pod_paths_are_multiple(self):
        topo = FatTreeTopology.testbed()
        # Hosts 0 and 7 are in different pods: several equal-cost paths exist.
        assert len(topo.candidate_paths(0, 7)) >= 2

    def test_diameter_at_most_six_hops(self):
        topo = FatTreeTopology.testbed()
        assert topo.diameter_hops() <= 6

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FatTreeTopology(FatTreeSpec(k=3))
        with pytest.raises(ValueError):
            FatTreeTopology(FatTreeSpec(k=4, num_pods=9))


class TestRouting:
    def test_path_endpoints(self):
        topo = FatTreeTopology.testbed()
        router = EcmpRouter(topo)
        path = router.path_for_flow(12345, 0, 5)
        assert path[0] == topo.host(0)
        assert path[-1] == topo.host(5)

    def test_flow_sticks_to_one_path(self):
        topo = FatTreeTopology.testbed()
        router = EcmpRouter(topo)
        assert router.path_for_flow(99, 0, 7) == router.path_for_flow(99, 0, 7)

    def test_flows_spread_over_paths(self):
        topo = FatTreeTopology.testbed()
        router = EcmpRouter(topo, seed=1)
        paths = {tuple(router.path_for_flow(flow, 0, 7)) for flow in range(200)}
        assert len(paths) >= 2

    def test_edge_lookup(self):
        topo = FatTreeTopology.testbed()
        router = EcmpRouter(topo)
        assert router.ingress_edge(0) == topo.edge_switch_of_host(0)
        assert router.path_hops(1, 0, 1) >= 2


class TestDistributeLosses:
    def test_total_losses_removed(self):
        rng = random.Random(1)
        segments = [(FlowHierarchy.SAMPLED_LL, 10), (FlowHierarchy.HL_CANDIDATE, 20)]
        delivered = distribute_losses(segments, 5, rng)
        assert sum(count for _, count in delivered) == 25
        assert all(count >= 0 for _, count in delivered)

    def test_zero_losses(self):
        segments = [(FlowHierarchy.HH_CANDIDATE, 7)]
        assert distribute_losses(segments, 0, random.Random(0)) == segments

    def test_losses_capped_at_total(self):
        segments = [(FlowHierarchy.HL_CANDIDATE, 3)]
        delivered = distribute_losses(segments, 10, random.Random(0))
        assert sum(count for _, count in delivered) == 0


class TestSimulator:
    def test_build_testbed_simulator(self):
        simulator = build_testbed_simulator(resources=SwitchResources.scaled(0.05))
        assert len(simulator.switches) == 4

    def test_attach_rejects_non_edge(self):
        simulator = NetworkSimulator()
        switch = EdgeSwitch("x", resources=SwitchResources.scaled(0.05))
        with pytest.raises(ValueError):
            simulator.attach_switch(("core", 0), switch)

    def test_run_epoch_truth(self):
        simulator = build_testbed_simulator(resources=SwitchResources.scaled(0.05), seed=2)
        trace = Trace(
            flows=[
                FlowRecord(flow_id=11, size=20, src_host=0, dst_host=4, is_victim=True, lost_packets=3),
                FlowRecord(flow_id=22, size=10, src_host=1, dst_host=5),
            ]
        )
        truth = simulator.run_epoch(trace)
        assert truth.num_flows() == 2
        assert truth.losses == {11: 3}
        assert truth.total_lost_packets() == 3

    def test_upstream_and_downstream_counts(self):
        simulator = build_testbed_simulator(resources=SwitchResources.scaled(0.05), seed=3)
        trace = Trace(flows=[FlowRecord(flow_id=5, size=30, src_host=0, dst_host=7,
                                        is_victim=True, lost_packets=4)])
        simulator.run_epoch(trace)
        ingress = simulator.edge_switch_for_host(0)
        egress = simulator.edge_switch_for_host(7)
        assert ingress.stats.packets_upstream == 30
        assert egress.stats.packets_downstream == 26

    def test_missing_dataplane_raises(self):
        simulator = NetworkSimulator()
        with pytest.raises(KeyError):
            simulator.edge_switch_for_host(0)

    @pytest.mark.parametrize("batched", [False, True])
    def test_duplicate_flow_ids_accumulate_in_truth(self, batched):
        # Regression: a flow ID appearing twice used to overwrite
        # truth.flow_sizes / truth.losses instead of accumulating.
        simulator = build_testbed_simulator(resources=SwitchResources.scaled(0.05), seed=4)
        trace = Trace(
            flows=[
                FlowRecord(flow_id=7, size=12, src_host=0, dst_host=4,
                           is_victim=True, lost_packets=2),
                FlowRecord(flow_id=7, size=30, src_host=2, dst_host=6,
                           is_victim=True, lost_packets=5),
                FlowRecord(flow_id=9, size=4, src_host=1, dst_host=5),
            ]
        )
        truth = simulator.run_epoch(trace, batched=batched)
        assert truth.flow_sizes == {7: 42, 9: 4}
        assert truth.losses == {7: 7}
        assert truth.total_lost_packets() == 7

    def test_batched_epoch_matches_scalar(self):
        trace = Trace(
            flows=[
                FlowRecord(flow_id=100 + i, size=(i * 13) % 40 + 1,
                           src_host=i % 8, dst_host=(i + 3) % 8,
                           is_victim=(i % 5 == 0), lost_packets=(i % 5 == 0) * 2)
                for i in range(200)
            ]
        )
        resources = SwitchResources.scaled(0.05)
        scalar = build_testbed_simulator(resources=resources, seed=11)
        batched = build_testbed_simulator(resources=resources, seed=11)
        truth_a = scalar.run_epoch(trace, batched=False)
        truth_b = batched.run_epoch(trace, batched=True)
        assert truth_a.flow_sizes == truth_b.flow_sizes
        assert truth_a.losses == truth_b.losses
        assert truth_a.per_switch_flows == truth_b.per_switch_flows
        for node in scalar.switches:
            group_a = scalar.switches[node].end_epoch()
            group_b = batched.switches[node].end_epoch()
            assert group_a.classifier.tower.counter_array(0) == \
                group_b.classifier.tower.counter_array(0)
            for name in ("hh", "hl", "ll"):
                part_a = group_a.upstream.parts.part(name)
                part_b = group_b.upstream.parts.part(name)
                if part_a is None:
                    assert part_b is None
                    continue
                decode_a = part_a.decode_nondestructive()
                decode_b = part_b.decode_nondestructive()
                assert decode_a.flows == decode_b.flows
            assert group_a.upstream.memory_bytes() == group_b.upstream.memory_bytes()
            stats_a = scalar.switches[node].stats
            stats_b = batched.switches[node].stats
            assert stats_a.packets_upstream == stats_b.packets_upstream
            assert stats_a.packets_downstream == stats_b.packets_downstream
            assert stats_a.flows_seen == stats_b.flows_seen
            assert stats_a.per_hierarchy_packets == stats_b.per_hierarchy_packets
