"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_command_has_help(self):
        parser = build_parser()
        for command in ("list", "fig4", "fig7", "fig8", "fig9", "fig11", "overheads", "demo"):
            args = {
                "list": [command],
                "overheads": [command],
            }.get(command, [command, "--seed", "1"])
            parsed = parser.parse_args(args)
            assert callable(parsed.handler)

    def test_fig4_custom_arguments(self):
        parsed = build_parser().parse_args(
            ["fig4", "--flows", "500", "--victims", "50", "100", "--trials", "1"]
        )
        assert parsed.flows == 500
        assert parsed.victims == [50, 100]


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "demo" in out

    def test_overheads_runs(self, capsys):
        assert main(["overheads", "--epochs-ms", "50", "100"]) == 0
        out = capsys.readouterr().out
        assert "Collection bandwidth" in out

    def test_fig4_runs_small(self, capsys):
        assert main(["fig4", "--flows", "300", "--victims", "40", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "fermat KB" in out

    def test_demo_runs_small(self, capsys):
        assert main([
            "demo", "--flows", "150", "--epochs", "2", "--scale", "0.05",
            "--victim-ratio", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out and "epoch 1" in out


class TestRegistryCommands:
    """The registry-facing surface: run / list / describe."""

    def test_list_marks_registry_and_aliases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "repro.scenarios registry" in out
        assert "legacy aliases" in out
        # Registry-only scenarios appear even though they have no alias.
        for name in ("fig5", "fig6", "fig10", "workloads", "backend_speedup"):
            assert name in out

    def test_describe_prints_parameters(self, capsys):
        assert main(["describe", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "victims" in out and "sweep axis" in out

    def test_describe_unknown_scenario(self, capsys):
        assert main(["describe", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_fig4_json_stdout_is_parseable(self, capsys):
        assert main([
            "run", "fig4", "--set", "flows=200", "--set", "victims=30",
            "--set", "trials=1", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "fig4"
        assert payload["points"][0]["rows"][0]["victims"] == 30

    def test_run_unknown_scenario_fails(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_bad_override_fails(self, capsys):
        assert main(["run", "fig4", "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_run_malformed_set_fails(self, capsys):
        assert main(["run", "fig4", "--set", "flows"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_global_seed_before_subcommand(self, capsys):
        assert main([
            "--seed", "11", "run", "fig4", "--set", "flows=150",
            "--set", "victims=20", "--set", "trials=1", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 11

    def test_registry_only_scenario_runs_via_cli(self, capsys):
        assert main([
            "run", "fig6", "--set", "flows=100,200", "--set", "victims=20",
            "--set", "trials=1", "--jobs", "2", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["rows"][0]["flows"] for p in payload["points"]] == [100, 200]

    def test_run_csv_stdout(self, capsys):
        assert main([
            "run", "fig4", "--set", "flows=150", "--set", "victims=20",
            "--set", "trials=1", "--csv", "-",
        ]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("victims,")

    def test_run_honours_global_loss_rate_flag(self, capsys):
        assert main([
            "run", "fig4", "--set", "flows=150", "--set", "victims=20",
            "--set", "trials=1", "--loss-rate", "0.5", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["loss_rate"] == 0.5

    def test_json_and_csv_cannot_both_stream_to_stdout(self, capsys):
        assert main([
            "run", "fig4", "--set", "flows=150", "--json", "-", "--csv", "-",
        ]) == 2
        assert "cannot share stdout" in capsys.readouterr().err

    def test_json_file_plus_csv_stdout_keeps_stream_pure(self, capsys, tmp_path):
        """File-write status lines go to stderr, never into a stdout stream."""
        out_path = str(tmp_path / "fig4.json")
        assert main([
            "run", "fig4", "--set", "flows=150", "--set", "victims=20",
            "--set", "trials=1", "--json", out_path, "--csv", "-",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0].startswith("victims,")
        assert "wrote" not in captured.out
        assert out_path in captured.err
        assert json.loads(open(out_path).read())["scenario"] == "fig4"

    def test_legacy_alias_csv_stdout_is_pure(self, capsys):
        """--csv - must not interleave the human table into the CSV stream."""
        assert main([
            "fig4", "--flows", "150", "--victims", "20", "--trials", "1",
            "--csv", "-",
        ]) == 0
        out = capsys.readouterr().out
        assert "===" not in out
        assert out.splitlines()[0].startswith("victims,")

    def test_fig9_schedule_override_via_set(self, capsys):
        assert main([
            "run", "fig9", "--set", "schedule=150:0.05,300:0.15",
            "--set", "epochs_per_stage=1", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["schedule"] == [[150, 0.05], [300, 0.15]]

    def test_fig9_malformed_schedule_fails_cleanly(self, capsys):
        assert main(["run", "fig9", "--set", "schedule=150-0.05"]) == 2
        assert "':'-separated" in capsys.readouterr().err

    def test_fig9_flows_without_ratios_fails(self, capsys):
        assert main(["fig9", "--flows", "150", "300"]) == 2
        assert "--flows and --ratios together" in capsys.readouterr().err

    def test_fig9_unequal_flows_ratios_fails(self, capsys):
        assert main(["fig9", "--flows", "150", "300", "--ratios", "0.05"]) == 2
        assert "--ratios values" in capsys.readouterr().err
