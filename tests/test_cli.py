"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_command_has_help(self):
        parser = build_parser()
        for command in ("list", "fig4", "fig7", "fig8", "fig9", "fig11", "overheads", "demo"):
            args = {
                "list": [command],
                "overheads": [command],
            }.get(command, [command, "--seed", "1"])
            parsed = parser.parse_args(args)
            assert callable(parsed.handler)

    def test_fig4_custom_arguments(self):
        parsed = build_parser().parse_args(
            ["fig4", "--flows", "500", "--victims", "50", "100", "--trials", "1"]
        )
        assert parsed.flows == 500
        assert parsed.victims == [50, 100]


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "demo" in out

    def test_overheads_runs(self, capsys):
        assert main(["overheads", "--epochs-ms", "50", "100"]) == 0
        out = capsys.readouterr().out
        assert "Collection bandwidth" in out

    def test_fig4_runs_small(self, capsys):
        assert main(["fig4", "--flows", "300", "--victims", "40", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "fermat KB" in out

    def test_demo_runs_small(self, capsys):
        assert main([
            "demo", "--flows", "150", "--epochs", "2", "--scale", "0.05",
            "--victim-ratio", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out and "epoch 1" in out


class TestRegistryCommands:
    """The registry-facing surface: run / list / describe."""

    def test_list_marks_registry_and_aliases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "repro.scenarios registry" in out
        assert "legacy aliases" in out
        # Registry-only scenarios appear even though they have no alias.
        for name in ("fig5", "fig6", "fig10", "workloads", "backend_speedup"):
            assert name in out

    def test_describe_prints_parameters(self, capsys):
        assert main(["describe", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "victims" in out and "sweep axis" in out

    def test_describe_unknown_scenario(self, capsys):
        assert main(["describe", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_fig4_json_stdout_is_parseable(self, capsys):
        assert main([
            "run", "fig4", "--set", "flows=200", "--set", "victims=30",
            "--set", "trials=1", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "fig4"
        assert payload["points"][0]["rows"][0]["victims"] == 30

    def test_run_unknown_scenario_fails(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_bad_override_fails(self, capsys):
        assert main(["run", "fig4", "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_run_malformed_set_fails(self, capsys):
        assert main(["run", "fig4", "--set", "flows"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_global_seed_before_subcommand(self, capsys):
        assert main([
            "--seed", "11", "run", "fig4", "--set", "flows=150",
            "--set", "victims=20", "--set", "trials=1", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 11

    def test_registry_only_scenario_runs_via_cli(self, capsys):
        assert main([
            "run", "fig6", "--set", "flows=100,200", "--set", "victims=20",
            "--set", "trials=1", "--jobs", "2", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["rows"][0]["flows"] for p in payload["points"]] == [100, 200]

    def test_run_csv_stdout(self, capsys):
        assert main([
            "run", "fig4", "--set", "flows=150", "--set", "victims=20",
            "--set", "trials=1", "--csv", "-",
        ]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("victims,")

    def test_run_honours_global_loss_rate_flag(self, capsys):
        assert main([
            "run", "fig4", "--set", "flows=150", "--set", "victims=20",
            "--set", "trials=1", "--loss-rate", "0.5", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["loss_rate"] == 0.5

    def test_json_and_csv_cannot_both_stream_to_stdout(self, capsys):
        assert main([
            "run", "fig4", "--set", "flows=150", "--json", "-", "--csv", "-",
        ]) == 2
        assert "cannot share stdout" in capsys.readouterr().err

    def test_json_file_plus_csv_stdout_keeps_stream_pure(self, capsys, tmp_path):
        """File-write status lines go to stderr, never into a stdout stream."""
        out_path = str(tmp_path / "fig4.json")
        assert main([
            "run", "fig4", "--set", "flows=150", "--set", "victims=20",
            "--set", "trials=1", "--json", out_path, "--csv", "-",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0].startswith("victims,")
        assert "wrote" not in captured.out
        assert out_path in captured.err
        assert json.loads(open(out_path).read())["scenario"] == "fig4"

    def test_legacy_alias_csv_stdout_is_pure(self, capsys):
        """--csv - must not interleave the human table into the CSV stream."""
        assert main([
            "fig4", "--flows", "150", "--victims", "20", "--trials", "1",
            "--csv", "-",
        ]) == 0
        out = capsys.readouterr().out
        assert "===" not in out
        assert out.splitlines()[0].startswith("victims,")

    def test_json_stdout_streams_rows_per_point(self, capsys):
        """The JSON stream is one valid document whose rows arrive per point."""
        assert main([
            "run", "fig6", "--set", "flows=100,200", "--set", "victims=20",
            "--set", "trials=1", "--json", "-",
        ]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert [p["rows"][0]["flows"] for p in payload["points"]] == [100, 200]
        # Each point's rows start on their own line (written as the point
        # completed), so a consumer tailing stdout sees them incrementally.
        row_lines = [line for line in out.splitlines() if line.startswith('{"flows"')]
        assert len(row_lines) == 2

    def test_csv_stdout_streams_rows_per_point(self, capsys):
        assert main([
            "run", "fig6", "--set", "flows=100,200", "--set", "victims=20",
            "--set", "trials=1", "--csv", "-",
        ]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("flows,")
        assert [line.split(",")[0] for line in lines[1:3]] == ["100", "200"]

    def test_fig9_schedule_override_via_set(self, capsys):
        assert main([
            "run", "fig9", "--set", "schedule=150:0.05,300:0.15",
            "--set", "epochs_per_stage=1", "--json", "-",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["schedule"] == [[150, 0.05], [300, 0.15]]

    def test_fig9_malformed_schedule_fails_cleanly(self, capsys):
        assert main(["run", "fig9", "--set", "schedule=150-0.05"]) == 2
        assert "':'-separated" in capsys.readouterr().err

    def test_fig9_flows_without_ratios_fails(self, capsys):
        assert main(["fig9", "--flows", "150", "300"]) == 2
        assert "--flows and --ratios together" in capsys.readouterr().err

    def test_fig9_unequal_flows_ratios_fails(self, capsys):
        assert main(["fig9", "--flows", "150", "300", "--ratios", "0.05"]) == 2
        assert "--ratios values" in capsys.readouterr().err


class TestStreamCommand:
    """The continuous streaming engine behind ``repro.cli stream``."""

    def test_stream_writes_jsonl_records(self, capsys, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        assert main([
            "stream", "--phases", "100:0.05:2,200:0.2:1", "--scale", "0.05",
            "--jsonl", path, "--quiet",
        ]) == 0
        records = [json.loads(line) for line in open(path)]
        assert [r["epoch"] for r in records] == [0, 1, 2]
        assert [r["num_flows"] for r in records] == [100, 100, 200]
        assert "[stream] 3 epochs" in capsys.readouterr().err

    def test_stream_console_lines_and_summary(self, capsys):
        assert main(["stream", "--phases", "80:0.1:2", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "epoch    0" in out and "epoch    1" in out
        assert "[stream] 2 epochs" in out

    def test_stream_csv_stdout_is_pure(self, capsys):
        assert main([
            "stream", "--phases", "80:0.1:2", "--scale", "0.05", "--csv", "-",
        ]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert lines[0].startswith("epoch,")
        assert len(lines) == 3
        assert "[stream]" in captured.err

    def test_stream_epoch_cap_and_failure_flags(self, capsys, tmp_path):
        path = str(tmp_path / "failover.jsonl")
        assert main([
            "stream", "--phases", "100:0.0:6", "--scale", "0.05",
            "--fail-epoch", "1", "--recover-epoch", "3", "--fail-loss", "1.0",
            "--epochs", "4", "--jsonl", path, "--quiet",
        ]) == 0
        records = [json.loads(line) for line in open(path)]
        assert len(records) == 4
        victims = [r["num_victims"] for r in records]
        assert victims[0] == 0 and victims[1] > 0 and victims[3] == 0

    def test_stream_trace_replay(self, capsys, tmp_path):
        from repro.stream import SyntheticSource, write_trace_file

        trace_path = str(tmp_path / "replay.jsonl")
        write_trace_file(trace_path, SyntheticSource.steady(60, 2, seed=3))
        assert main([
            "stream", "--trace", trace_path, "--scale", "0.05", "--quiet",
        ]) == 0
        assert "[stream] 2 epochs" in capsys.readouterr().err

    def test_stream_rejects_double_stdout(self, capsys):
        assert main(["stream", "--jsonl", "-", "--csv", "-"]) == 2
        assert "cannot share stdout" in capsys.readouterr().err

    def test_stream_rejects_malformed_phases(self, capsys):
        assert main(["stream", "--phases", "100-0.05-2"]) == 2
        assert "flows:victim_ratio:epochs" in capsys.readouterr().err

    def test_stream_rejects_missing_trace_file(self, capsys):
        assert main(["stream", "--trace", "no_such_trace.jsonl"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_stream_rejects_out_of_range_fail_host(self, capsys):
        assert main([
            "stream", "--phases", "50:0.0:1", "--fail-epoch", "0",
            "--fail-host", "99",
        ]) == 2
        assert "--fail-host" in capsys.readouterr().err


class TestTraceCommand:
    """The trace inspect/convert surface over the columnar trace plane."""

    @staticmethod
    def _write_jsonl(tmp_path):
        from repro.stream import SyntheticSource
        from repro.stream.sources import write_trace_file

        path = str(tmp_path / "t.jsonl")
        source = SyntheticSource.steady(num_flows=40, epochs=3, victim_ratio=0.1,
                                        seed=2)
        write_trace_file(path, source)
        return path

    def test_convert_jsonl_to_binary_and_back(self, capsys, tmp_path):
        jsonl = self._write_jsonl(tmp_path)
        binary = str(tmp_path / "t.rtbin")
        csv_path = str(tmp_path / "t.csv")
        assert main(["trace", "convert", jsonl, binary]) == 0
        assert "3 epochs" in capsys.readouterr().out
        assert main(["trace", "convert", binary, csv_path]) == 0
        assert "3 epochs" in capsys.readouterr().out

        from repro.stream.sources import TraceFileSource
        original = list(TraceFileSource(jsonl).epochs())
        round_tripped = list(TraceFileSource(csv_path).epochs())
        assert len(original) == len(round_tripped)
        for a, b in zip(original, round_tripped):
            assert list(a.flows) == list(b.flows)

    def test_inspect_binary(self, capsys, tmp_path):
        jsonl = self._write_jsonl(tmp_path)
        binary = str(tmp_path / "t.rtbin")
        assert main(["trace", "convert", jsonl, binary, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["trace", "inspect", binary]) == 0
        out = capsys.readouterr().out
        assert "format:       binary" in out
        assert "epochs:       3" in out
        assert "flow_id_lo" in out

    def test_inspect_text_and_json_output(self, capsys, tmp_path):
        jsonl = self._write_jsonl(tmp_path)
        assert main(["trace", "inspect", jsonl, "--json", "-"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format"] == "jsonl"
        assert summary["epochs"] == 3
        assert summary["flows"] == 120

    def test_inspect_missing_file(self, capsys):
        assert main(["trace", "inspect", "no_such.rtbin"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_inspect_corrupt_binary(self, capsys, tmp_path):
        path = str(tmp_path / "bad.rtbin")
        with open(path, "wb") as handle:
            handle.write(b"RTRC" + b"\0" * 20)  # header only, no manifest
        assert main(["trace", "inspect", path]) == 1
        assert "error" in capsys.readouterr().err

    def test_convert_unknown_extension(self, capsys, tmp_path):
        jsonl = self._write_jsonl(tmp_path)
        assert main(["trace", "convert", jsonl, str(tmp_path / "t.txt")]) == 2
        assert "cannot infer trace format" in capsys.readouterr().err
