"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_command_has_help(self):
        parser = build_parser()
        for command in ("list", "fig4", "fig7", "fig8", "fig9", "fig11", "overheads", "demo"):
            args = {
                "list": [command],
                "overheads": [command],
            }.get(command, [command, "--seed", "1"])
            parsed = parser.parse_args(args)
            assert callable(parsed.handler)

    def test_fig4_custom_arguments(self):
        parsed = build_parser().parse_args(
            ["fig4", "--flows", "500", "--victims", "50", "100", "--trials", "1"]
        )
        assert parsed.flows == 500
        assert parsed.victims == [50, 100]


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "demo" in out

    def test_overheads_runs(self, capsys):
        assert main(["overheads", "--epochs-ms", "50", "100"]) == 0
        out = capsys.readouterr().out
        assert "Collection bandwidth" in out

    def test_fig4_runs_small(self, capsys):
        assert main(["fig4", "--flows", "300", "--victims", "40", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "fermat KB" in out

    def test_demo_runs_small(self, capsys):
        assert main([
            "demo", "--flows", "150", "--epochs", "2", "--scale", "0.05",
            "--victim-ratio", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out and "epoch 1" in out
