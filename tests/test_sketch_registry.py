"""Tests for the config-driven sketch registry."""

import pytest

from repro.experiments.accumulation import ALL_ALGORITHMS, build_sketch
from repro.sketches.registry import available, build, is_registered, register_sketch


class TestRegistryContents:
    def test_all_fifteen_plus_sketches_registered(self):
        names = available()
        assert len(names) >= 15
        expected = {
            "tower_fermat", "cm", "cu", "countheap", "countsketch", "univmon",
            "elastic", "fcm", "hashpipe", "coco", "mrac", "tower", "bloom",
            "fermat", "flowradar", "lossradar",
        }
        assert expected <= set(names)

    def test_every_accumulation_algorithm_is_registered(self):
        for name in ALL_ALGORITHMS:
            assert is_registered(name), name

    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="tower_fermat"):
            build("bogus", memory_bytes=1000)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_sketch("cm")(lambda memory_bytes, seed=0: None)


class TestBuild:
    @pytest.mark.parametrize("name", sorted(
        {"tower_fermat", "cm", "cu", "countheap", "countsketch", "univmon",
         "elastic", "fcm", "hashpipe", "coco", "mrac", "tower"}
    ))
    def test_memory_budget_construction_and_insert(self, name):
        sketch = build(name, memory_bytes=20_000, seed=3)
        for flow_id in range(1, 50):
            sketch.insert(flow_id, flow_id % 7 + 1)
        assert sketch.memory_bytes() > 0
        assert sketch.query(1) >= 0

    def test_fermat_from_memory_inserts_and_decodes(self):
        sketch = build("fermat", memory_bytes=20_000, seed=3)
        for flow_id in range(1, 50):
            sketch.insert(flow_id, flow_id % 7 + 1)
        result = sketch.decode()
        assert result.success
        assert result.flows[1] == 2

    def test_invertible_meters_construct_from_memory(self):
        for name in ("flowradar", "lossradar", "bloom"):
            sketch = build(name, memory_bytes=10_000, seed=1)
            assert sketch.memory_bytes() > 0

    def test_fermat_accepts_buckets_per_array(self):
        sketch = build("fermat", buckets_per_array=64, num_arrays=3, seed=2)
        assert sketch.params.buckets_per_array == 64
        assert sketch.params.num_arrays == 3

    def test_ibf_meters_accept_num_cells(self):
        assert build("flowradar", num_cells=120, seed=1).num_cells == 120
        assert build("lossradar", num_cells=120, seed=1).num_cells == 120

    def test_tower_fermat_threshold_kwarg(self):
        sketch = build("tower_fermat", memory_bytes=50_000, seed=1, threshold=99)
        assert sketch.threshold == 99

    def test_irrelevant_kwargs_are_dropped(self):
        # One config dict can drive heterogeneous sketches: cm has no T_h knob.
        sketch = build("cm", memory_bytes=8_000, seed=1, hh_candidate_threshold=40)
        assert sketch.memory_bytes() > 0

    def test_missing_sizing_rejected(self):
        with pytest.raises(ValueError, match="memory_bytes|buckets_per_array"):
            build("fermat", seed=1)

    @pytest.mark.parametrize("name", ["cm", "tower_fermat", "univmon", "bloom"])
    def test_missing_memory_budget_rejected_clearly(self, name):
        with pytest.raises(ValueError, match="requires memory_bytes"):
            build(name, seed=1)


class TestAccumulationDelegation:
    def test_build_sketch_delegates_to_registry(self):
        direct = build("cm", memory_bytes=16_000, seed=5)
        wrapped = build_sketch("cm", 16_000, seed=5)
        assert type(direct) is type(wrapped)
        assert direct.memory_bytes() == wrapped.memory_bytes()
        direct.insert(7, 3)
        wrapped.insert(7, 3)
        assert direct.query(7) == wrapped.query(7)

    def test_build_sketch_threshold_reaches_tower_fermat(self):
        sketch = build_sketch("tower_fermat", 50_000, seed=1, hh_candidate_threshold=123)
        assert sketch.threshold == 123

    def test_build_sketch_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_sketch("nope", 1000)
