"""End-to-end integration tests for the ChameleMon façade (epoch loop)."""

import pytest

from repro import ChameleMon, SwitchResources, generate_workload
from repro.controlplane.reconfig import NetworkLevel


def make_system(scale=0.05, seed=0, **kwargs):
    return ChameleMon(resources=SwitchResources.scaled(scale), seed=seed, **kwargs)


def trace_for(system, num_flows, victim_ratio, seed):
    return generate_workload(
        "DCTCP",
        num_flows=num_flows,
        victim_ratio=victim_ratio,
        loss_rate=0.05,
        num_hosts=system.num_hosts,
        seed=seed,
    )


class TestHealthyOperation:
    def test_detects_all_losses_in_small_healthy_network(self):
        system = make_system(seed=1)
        # Warm-up epoch lets the controller size the HL encoders, then the
        # following epochs must detect every victim flow exactly.
        for epoch in range(3):
            result = system.run_epoch(trace_for(system, 300, 0.1, seed=10 + epoch))
        accuracy = result.loss_accuracy()
        assert result.level is NetworkLevel.HEALTHY
        assert accuracy["f1"] == 1.0
        assert accuracy["are"] == 0.0

    def test_no_losses_reported_without_victims(self):
        system = make_system(seed=2)
        for epoch in range(2):
            result = system.run_epoch(trace_for(system, 300, 0.0, seed=20 + epoch))
        assert result.report.loss_report.all_losses() == {}

    def test_thresholds_stay_at_one_when_everything_fits(self):
        system = make_system(seed=3)
        for epoch in range(3):
            result = system.run_epoch(trace_for(system, 200, 0.05, seed=30 + epoch))
        assert result.config.threshold_high == 1
        assert result.config.threshold_low == 1
        assert result.config.sample_rate == 1.0

    def test_memory_division_sums_to_one(self):
        system = make_system(seed=4)
        result = system.run_epoch(trace_for(system, 300, 0.1, seed=40))
        division = result.memory_division()
        assert sum(division.values()) == pytest.approx(1.0)

    def test_config_changes_apply_next_epoch(self):
        system = make_system(seed=5)
        first = system.run_epoch(trace_for(system, 600, 0.15, seed=50))
        second = system.run_epoch(trace_for(system, 600, 0.15, seed=51))
        assert second.config == first.next_config


class TestAttentionShifts:
    def test_threshold_rises_with_many_flows(self):
        system = make_system(seed=6)
        result = None
        for epoch in range(5):
            result = system.run_epoch(trace_for(system, 2500, 0.02, seed=60 + epoch))
        # The tiny switches cannot record 2500 flows with T_h = 1.
        assert result.config.threshold_high > 1

    def test_transitions_to_ill_with_many_victims(self):
        system = make_system(seed=7)
        level_history = []
        for epoch in range(8):
            result = system.run_epoch(trace_for(system, 3000, 0.25, seed=70 + epoch))
            level_history.append(result.level)
        assert NetworkLevel.ILL in level_history
        final = system.results[-1]
        assert final.config.layout.m_ll > 0 or final.level is NetworkLevel.ILL

    def test_returns_to_healthy_when_losses_stop(self):
        system = make_system(seed=8)
        for epoch in range(7):
            system.run_epoch(trace_for(system, 3000, 0.25, seed=80 + epoch))
        went_ill = system.level is NetworkLevel.ILL
        for epoch in range(6):
            result = system.run_epoch(trace_for(system, 300, 0.02, seed=90 + epoch))
        assert system.level is NetworkLevel.HEALTHY
        assert went_ill  # the scenario really exercised both directions

    def test_precision_stays_high_in_ill_state(self):
        system = make_system(seed=9)
        for epoch in range(8):
            result = system.run_epoch(trace_for(system, 3000, 0.25, seed=100 + epoch))
        accuracy = result.loss_accuracy()
        if result.report.loss_report.all_losses():
            assert accuracy["precision"] > 0.95


class TestRunHelpers:
    def test_run_until_stable_stops_early(self):
        system = make_system(seed=10)
        results = system.run_until_stable(
            lambda epoch: trace_for(system, 200, 0.05, seed=200 + epoch), max_epochs=8
        )
        assert 1 <= len(results) <= 8
        assert results[-1].next_config == results[-2].next_config if len(results) > 1 else True

    def test_epochs_to_adapt(self):
        system = make_system(seed=11)
        results = [
            system.run_epoch(trace_for(system, 400, 0.1, seed=300 + epoch))
            for epoch in range(4)
        ]
        assert 0 <= system.epochs_to_adapt(results) <= 4

    def test_history_recorded(self):
        system = make_system(seed=12)
        system.run_epoch(trace_for(system, 100, 0.0, seed=400))
        system.run_epoch(trace_for(system, 100, 0.0, seed=401))
        assert len(system.results) == 2
        assert len(system.controller.history) == 2

    def test_tasks_computed_when_enabled(self):
        system = make_system(seed=13, compute_tasks=True)
        result = system.run_epoch(trace_for(system, 200, 0.0, seed=500))
        assert result.report.cardinality > 0
        assert result.report.flow_size_distribution
