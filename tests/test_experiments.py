"""Tests for the experiment drivers that regenerate the paper's figures."""

import pytest

from repro.experiments.accumulation import (
    ALL_ALGORITHMS,
    TASK_ALGORITHMS,
    build_sketch,
    evaluate_tasks,
)
from repro.experiments.attention import run_timeline, sweep_num_flows, sweep_victim_ratio
from repro.experiments.loss_detection import SCHEMES, compare_schemes, measure, minimum_memory
from repro.traffic.generator import generate_caida_like_trace


@pytest.fixture(scope="module")
def small_trace():
    return generate_caida_like_trace(
        num_flows=800, victim_flows=80, loss_rate=0.01, victim_selection="largest", seed=1
    )


class TestLossDetectionExperiment:
    def test_all_schemes_detect_the_losses(self, small_trace):
        results = compare_schemes(small_trace, trials=2, seed=1)
        truth = small_trace.loss_map()
        assert set(results) == set(SCHEMES)
        for name, measurement in results.items():
            assert measurement.detected_losses == truth, name

    def test_fermat_uses_least_memory(self, small_trace):
        results = compare_schemes(small_trace, trials=2, seed=2)
        assert results["fermat"].memory_bytes < results["flowradar"].memory_bytes
        assert results["fermat"].memory_bytes < results["lossradar"].memory_bytes

    def test_fermat_memory_scales_with_victims_not_flows(self):
        few_victims = generate_caida_like_trace(
            num_flows=800, victim_flows=40, loss_rate=0.01, victim_selection="largest", seed=3
        )
        many_victims = generate_caida_like_trace(
            num_flows=800, victim_flows=160, loss_rate=0.01, victim_selection="largest", seed=3
        )
        _, mem_few = minimum_memory("fermat", few_victims, trials=2, seed=3)
        _, mem_many = minimum_memory("fermat", many_victims, trials=2, seed=3)
        assert mem_many > mem_few * 2

    def test_flowradar_memory_scales_with_flows(self):
        small = generate_caida_like_trace(num_flows=400, victim_flows=40, seed=4)
        large = generate_caida_like_trace(num_flows=1600, victim_flows=40, seed=4)
        _, mem_small = minimum_memory("flowradar", small, trials=2, seed=4)
        _, mem_large = minimum_memory("flowradar", large, trials=2, seed=4)
        assert mem_large > mem_small * 2

    def test_lossradar_memory_scales_with_lost_packets(self):
        low_rate = generate_caida_like_trace(
            num_flows=600, victim_flows=60, loss_rate=0.01, victim_selection="largest", seed=5
        )
        high_rate = generate_caida_like_trace(
            num_flows=600, victim_flows=60, loss_rate=0.2, victim_selection="largest", seed=5
        )
        _, mem_low = minimum_memory("lossradar", low_rate, trials=2, seed=5)
        _, mem_high = minimum_memory("lossradar", high_rate, trials=2, seed=5)
        assert mem_high > mem_low * 2

    def test_measure_reports_positive_time(self, small_trace):
        measurement = measure("fermat", small_trace, trials=2, seed=6)
        assert measurement.decode_seconds > 0
        assert measurement.memory_megabytes > 0

    def test_unknown_scheme_rejected(self, small_trace):
        with pytest.raises(KeyError):
            minimum_memory("bogus", small_trace)


class TestAccumulationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        first = generate_caida_like_trace(num_flows=1500, seed=7)
        second = generate_caida_like_trace(num_flows=1500, seed=8)
        return evaluate_tasks(first, second, memory_bytes=80_000, seed=7,
                              distribution_iterations=2)

    def test_every_task_has_results(self, result):
        as_dict = result.as_dict()
        for task, algorithms in TASK_ALGORITHMS.items():
            metric_key = {
                "heavy_hitter": "heavy_hitter_f1",
                "flow_size": "flow_size_are",
                "heavy_change": "heavy_change_f1",
                "distribution": "distribution_wmre",
                "entropy": "entropy_re",
                "cardinality": "cardinality_re",
            }[task]
            for algorithm in algorithms:
                assert algorithm in as_dict[metric_key], (task, algorithm)

    def test_tower_fermat_heavy_hitter_quality(self, result):
        assert result.heavy_hitter_f1["tower_fermat"] > 0.9

    def test_tower_fermat_flow_size_competitive(self, result):
        # Comparable accuracy to the per-flow-size baselines (paper: at least
        # comparable; at laptop scale every sketch is near-exact, so we only
        # require a small absolute error).
        assert result.flow_size_are["tower_fermat"] < 0.05

    def test_cardinality_accuracy(self, result):
        assert result.cardinality_re["tower_fermat"] < 0.1

    def test_build_sketch_knows_all_algorithms(self):
        for name in ALL_ALGORITHMS:
            sketch = build_sketch(name, 50_000, seed=1)
            assert sketch.memory_bytes() > 0
        with pytest.raises(KeyError):
            build_sketch("nope", 1000)


class TestAttentionExperiment:
    def test_sweep_num_flows_shapes(self):
        sweep = sweep_num_flows(
            flow_counts=(200, 400), victim_ratio=0.1, scale=0.05, max_epochs=5, seed=1
        )
        assert len(sweep.points) == 2
        for point in sweep.points:
            assert point.level in ("healthy", "ill")
            assert sum(point.memory_division.values()) == pytest.approx(1.0)
            assert 1 <= point.epochs_to_stabilise <= 5
        assert [x for x, _ in sweep.series("threshold_high")] == [200.0, 400.0]

    def test_sweep_victim_ratio_shapes(self):
        sweep = sweep_victim_ratio(
            victim_ratios=(0.05, 0.2), num_flows=400, scale=0.05, max_epochs=5, seed=2
        )
        assert len(sweep.points) == 2
        assert sweep.points[0].victim_ratio == 0.05

    def test_timeline_records_every_epoch(self):
        timeline = run_timeline(
            schedule=((200, 0.05), (600, 0.2), (200, 0.05)),
            epochs_per_stage=2,
            scale=0.05,
            seed=3,
        )
        assert len(timeline.epochs) == 6
        assert len(timeline.shift_epochs) == 2
        assert timeline.max_shift_epochs() <= 2
